#include "service/detection_service.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <utility>

#include "nn/checkpoint.h"
#include "utils/errors.h"
#include "utils/fault_injection.h"
#include "utils/memory_budget.h"

namespace usb {

std::string to_string(ScanStatus status) {
  switch (status) {
    case ScanStatus::kQueued: return "queued";
    case ScanStatus::kRunning: return "running";
    case ScanStatus::kDone: return "done";
    case ScanStatus::kCancelled: return "cancelled";
    case ScanStatus::kFailed: return "failed";
    case ScanStatus::kTimedOut: return "timed_out";
    case ScanStatus::kShed: return "shed";
  }
  return "unknown";
}

std::string to_string(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kBlock: return "block";
    case AdmissionPolicy::kReject: return "reject";
  }
  return "unknown";
}

namespace detail {

/// Shared between the submitting thread, the scan's execution, and any
/// number of ScanHandle copies. The request payload (model clone, detector,
/// probe) is released the moment the scan reaches a terminal status; the
/// outcome stays alive for as long as any handle does.
struct ScanState {
  std::uint64_t id = 0;

  // Request payload. Touched only by submit() (filling) and the execution's
  // stages (consuming + releasing) — never by handles. stored_probe is
  // resolved lazily from probe_key by the scan's init stage (so a queued
  // scan that is shed/cancelled never materializes, and a materialization
  // failure is a retryable stage fault).
  std::unique_ptr<Network> model;                  // live-pointer requests (submit clone)
  std::optional<ModelRef> model_ref;               // ref-based requests
  std::shared_ptr<const ModelData> stored_model;   // resolved ref; pins the store entry
  DetectorPtr detector;
  std::optional<ProbeKey> probe_key;
  std::shared_ptr<const ProbeData> stored_probe;  // probe_key requests
  std::unique_ptr<Dataset> owned_probe;           // explicit-probe requests
  ScanOptions options;

  // Retry policy, resolved at submit() from options + service defaults.
  // Immutable after publication.
  int max_retries = 0;
  double retry_backoff_seconds = 0.0;

  // Bytes this scan's submit-time model clone registered with the process
  // MemoryBudget; released exactly once (finish() or destruction).
  std::atomic<std::int64_t> clone_budget_bytes{0};
  void release_clone_budget() noexcept {
    const std::int64_t bytes = clone_budget_bytes.exchange(0);
    if (bytes > 0) MemoryBudget::process().release(MemoryBudget::Category::kModelClones, bytes);
  }
  ~ScanState() { release_clone_budget(); }

  std::atomic<bool> cancel{false};

  // Deadline, fixed at submit() from ScanOptions::deadline_seconds (falling
  // back to the service default). Immutable after publication, so
  // deadline_expired() needs no lock.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  [[nodiscard]] bool deadline_expired() const {
    return has_deadline && std::chrono::steady_clock::now() >= deadline;
  }

  mutable std::mutex mutex;
  mutable std::condition_variable done_cv;
  ScanOutcome outcome;  // outcome.status doubles as the live status
  bool terminal = false;

  /// The scan's execution, for cancel routing. Written once by submit()
  /// before the state is published; read under `mutex`; cleared by finish()
  /// (breaking the execution<->state ownership cycle).
  std::shared_ptr<ScanExecution> execution;

  void finish(ScanOutcome final_outcome) {
    // Drop the payload BEFORE publishing the terminal status: a long-lived
    // handle must not pin a model clone or a probe materialization, and a
    // waiter observing the terminal status must also observe the memory
    // budget drained of this scan's bytes. Safe unlocked — finish() runs
    // exactly once (terminal transitions are guarded by the execution's
    // phase) and no stage touches the payload once the last item resolved.
    model.reset();
    stored_model.reset();  // unpins the ModelStore entry (evictable again)
    release_clone_budget();
    detector.reset();
    stored_probe.reset();
    owned_probe.reset();
    std::shared_ptr<ScanExecution> exec;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      outcome = std::move(final_outcome);
      terminal = true;
      // Break the execution<->state ownership cycle; released outside the
      // lock (the execution calls finish() with its own lock held; a live
      // caller always holds another reference).
      exec = std::move(execution);
    }
    done_cv.notify_all();
  }
};

/// One admitted scan's replay of a blocking schedule as discrete items on
/// the service's global RoundScheduler. Message-driven: every stage's
/// completion decides (under mu_) which stages to post next; nothing ever
/// blocks waiting for another stage, so a single dispatcher can interleave
/// any number of scans and cancellation simply stops posting.
///
/// The three modes replicate class_scan_scheduler.cpp's three schedules
/// stage for stage:
///  - kMonolithic (early exit disabled): construct -> rounds until budget
///    exhausted -> finalize, per class, no cross-class flow. Identical to
///    run() by the run_steps slicing contract.
///  - kSyncBarrier: all classes constructed, then lockstep rounds; the
///    LAST arriver of each round recomputes the MAD cutoff (from round
///    min_rounds on) over ALL classes and retires the outliers — the same
///    population, formula, and logical point as run_early_exit.
///  - kAsyncRendezvous: each class runs max(1, min_rounds) rounds (or to
///    exhaustion) and "arrives"; the K-th arrival fixes the single cutoff;
///    untethered classes then check it BEFORE every further round, exactly
///    like run_async_retire.
///
/// Which dispatcher runs a stage, and how stages of different scans
/// interleave, is explicitly schedule-only — every cutoff is a pure
/// function of class-deterministic statistics read at those fixed points.
class ScanExecution : public std::enable_shared_from_this<ScanExecution> {
 public:
  ScanExecution(DetectionService& service, std::shared_ptr<ScanState> state)
      : service_(&service), state_(std::move(state)) {}

  /// Admits the scan: creates its scheduler job (at the current fair-share
  /// frontier), marks it kRunning, and posts the init stage. No-op if the
  /// scan was cancelled while still queued. A scan admitted PAST its
  /// deadline resolves kTimedOut right here, without ever creating a job or
  /// consuming a dispatcher — its slot goes straight to the next queued
  /// scan.
  void launch() {
    std::vector<std::shared_ptr<ScanExecution>> launches;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (phase_ != Phase::kQueued) return;
      if (state_->deadline_expired()) {
        phase_ = Phase::kTerminal;
        state_->finish(ScanOutcome{ScanStatus::kTimedOut, {}, {}});
        service_->timed_out_.fetch_add(1);
        service_->retire_scan(state_, this, launches);
      } else {
        phase_ = Phase::kLaunched;
        {
          const std::lock_guard<std::mutex> state_lock(state_->mutex);
          state_->outcome.status = ScanStatus::kRunning;
        }
        RoundScheduler::JobOptions job_options;
        job_options.priority = state_->options.priority;
        job_options.weight = state_->options.fair_weight;
        job_options.owner = state_->id;  // heartbeat attribution
        // Defense in depth: run_stage already routes stage exceptions, so
        // only an escape from the completion path itself lands here — it
        // still fails ONLY this scan, never the dispatcher crew. Weak
        // capture: the execution holds job_ and the job holds this handler,
        // so a strong self here would be a shared_ptr cycle that leaks
        // every scan. The handler only fires from an item, and items
        // capture the execution strongly, so lock() cannot miss a live one.
        job_options.on_item_error = [weak = weak_from_this()](const std::exception_ptr& error) {
          if (const std::shared_ptr<ScanExecution> self = weak.lock()) self->on_item_error(error);
        };
        job_ = service_->scheduler_.create_job(std::move(job_options));
        outstanding_ = 1;
        service_->scheduler_.enqueue(
            job_,
            // The inner stage function captures `self` BY VALUE: a retry
            // copies it past this enqueued wrapper's lifetime.
            [self = shared_from_this()] {
              self->run_stage("scan.init", [self] { self->stage_init(); }, 0);
            },
            "scan.init");
      }
    }
    for (const auto& exec : launches) exec->launch();
  }

  /// Called with state_->cancel already set. Resolves a still-queued scan
  /// (or a launched one whose first item never started) immediately;
  /// otherwise the flag drains the in-flight chain cooperatively at the
  /// next item boundary. A cancelled scan already past its deadline
  /// resolves kTimedOut, not kCancelled — the deadline expired first, and
  /// shutdown must not mask it.
  void request_cancel() { request_abort(/*timeout=*/false); }

  /// Deadline nudge (from a waiter observing expiry): like request_cancel
  /// but a no-op unless the deadline really is expired, and it does NOT
  /// set the cancel flag — an in-flight chain keeps draining through the
  /// run_stage deadline check instead.
  void request_timeout() {
    if (!state_->deadline_expired()) return;
    request_abort(/*timeout=*/true);
  }

  /// Overload shedding: resolves the scan kShed IF it is still queued.
  /// Racing an admission is safe — launch() flipped the phase under mu_
  /// first, so a scan picked for launch concurrently with a shed decision
  /// simply runs; a shed that wins makes the later launch() a no-op, and
  /// retire_scan rebalances the admission slot either way.
  void request_shed() {
    std::vector<std::shared_ptr<ScanExecution>> launches;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (phase_ != Phase::kQueued) return;
      phase_ = Phase::kTerminal;
      ScanOutcome outcome;
      outcome.status = ScanStatus::kShed;
      outcome.error = "shed under overload (queue/memory watermark)";
      state_->finish(std::move(outcome));
      service_->shed_.fetch_add(1);
      service_->retire_scan(state_, this, launches);
    }
    for (const auto& exec : launches) exec->launch();
  }

  /// Watchdog verdict on a stuck item of this scan (fail_stuck_scans):
  /// record the failure — the scan resolves kFailed when the stuck item
  /// finally returns (an item cannot be pre-empted) — and expedite any
  /// backoff-parked retries so the rest of the chain drains now.
  void mark_stuck(const char* point) {
    mark_failed(std::string("watchdog: stage '") + (point != nullptr && *point ? point : "item") +
                "' exceeded stuck_item_seconds");
    RoundScheduler::JobPtr job;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      job = job_;
    }
    if (job != nullptr) service_->scheduler_.expedite(job);
  }

  [[nodiscard]] const std::shared_ptr<ScanState>& scan_state() const noexcept { return state_; }

 private:
  enum class Phase { kQueued, kLaunched, kTerminal };
  enum class Mode { kMonolithic, kSyncBarrier, kAsyncRendezvous };

  /// The common immediate-resolution path behind request_cancel (timeout =
  /// false) and request_timeout (true). See request_cancel for semantics.
  void request_abort(bool timeout) {
    std::vector<std::shared_ptr<ScanExecution>> launches;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (phase_ == Phase::kTerminal) return;
      if (phase_ == Phase::kLaunched) {
        const std::int64_t dropped = service_->scheduler_.drop_queued_if_unstarted(job_);
        if (dropped < 0) {
          // A stage ran or is running: drain cooperatively. For a timeout
          // nudge, record the expiry so the chain resolves kTimedOut even
          // if it races a clock that has not been re-read yet. Retries
          // parked in backoff promote immediately — an aborting scan must
          // not wait out its own timer to observe the flag.
          if (timeout) timed_out_ = true;
          service_->scheduler_.expedite(job_);
          return;
        }
        outstanding_ -= dropped;  // the init item, dropped unrun
      }
      phase_ = Phase::kTerminal;
      if (timeout || state_->deadline_expired()) {
        state_->finish(ScanOutcome{ScanStatus::kTimedOut, {}, {}});
        service_->timed_out_.fetch_add(1);
      } else {
        state_->finish(ScanOutcome{ScanStatus::kCancelled, {}, {}});
        service_->cancelled_.fetch_add(1);
      }
      service_->retire_scan(state_, this, launches);
    }
    for (const auto& exec : launches) exec->launch();
  }

  /// Every scheduler item: skip the stage if the scan is past its
  /// deadline, cancelled, or failed (the chain then drains), route
  /// exceptions into the outcome — retrying TRANSIENT ones while budget
  /// remains — and run the completion accounting. The whole item runs
  /// under a FaultScope tagged with the scan id, so injected faults scoped
  /// to one scan can never leak into a concurrent healthy one
  /// (tests/test_fault_injection.cpp).
  void run_stage(const char* label, const std::function<void()>& stage, int attempt) {
    const fault::FaultScope fault_scope(state_->id);
    bool skip = false;
    if (state_->deadline_expired()) {
      const std::lock_guard<std::mutex> lock(mu_);
      timed_out_ = true;
      skip = true;
    }
    if (!skip) skip = state_->cancel.load(std::memory_order_relaxed);
    if (!skip) {
      const std::lock_guard<std::mutex> lock(mu_);
      skip = failed_ || timed_out_;
    }
    if (!skip) {
      try {
        stage();
      } catch (const ScanCancelled&) {
        state_->cancel.store(true, std::memory_order_relaxed);
      } catch (const ScanTimedOut&) {
        const std::lock_guard<std::mutex> lock(mu_);
        timed_out_ = true;
      } catch (const std::exception& error) {
        if (!maybe_retry(label, stage, attempt, error)) mark_failed(error.what());
      } catch (...) {
        mark_failed("unknown scan failure");
      }
    }
    complete_item();
  }

  /// Transient classification: explicit (ScanError::transient, so detectors
  /// opt stages in via TransientError) plus the two implicit families the
  /// service trusts to be retryable — injected faults (the registry models
  /// infrastructure hiccups) and allocation failures (memory pressure is
  /// relieved by shedding and backoff).
  [[nodiscard]] static bool is_transient_failure(const std::exception& error) {
    if (const auto* scan_error = dynamic_cast<const ScanError*>(&error)) {
      return scan_error->transient;
    }
    return dynamic_cast<const fault::InjectedFault*>(&error) != nullptr ||
           dynamic_cast<const std::bad_alloc*>(&error) != nullptr;
  }

  /// Re-enqueues a transiently-failed stage item with exponential backoff
  /// (base * 2^attempt) through the scheduler's timer queue. Returns false
  /// — caller records the failure — when the error is permanent, the
  /// per-item budget is spent, or the scan is already aborting. The
  /// replacement item is posted BEFORE this one completes (net outstanding
  /// unchanged), so the scan cannot transiently look finished.
  [[nodiscard]] bool maybe_retry(const char* label, const std::function<void()>& stage,
                                 int attempt, const std::exception& error) {
    if (!is_transient_failure(error)) return false;
    if (attempt >= state_->max_retries) return false;
    if (state_->cancel.load(std::memory_order_relaxed) || state_->deadline_expired()) return false;
    const double backoff = state_->retry_backoff_seconds *
                           static_cast<double>(std::int64_t{1} << std::min(attempt, 30));
    const std::lock_guard<std::mutex> lock(mu_);
    if (phase_ == Phase::kTerminal || failed_ || timed_out_) return false;
    ++retries_;
    service_->items_retried_.fetch_add(1);
    ++outstanding_;
    service_->scheduler_.enqueue_after(
        job_, backoff,
        [self = shared_from_this(), label, stage, next = attempt + 1] {
          self->run_stage(label, stage, next);
        },
        label);
    return true;
  }

  /// RoundScheduler's route-to-owner handler: anything that escaped an
  /// item of this scan (run_stage catches stage exceptions, so this is the
  /// completion path's own failure) is classified exactly like a stage
  /// exception, then the item is completed — the throwing item never
  /// reached its own complete_item.
  void on_item_error(const std::exception_ptr& error) {
    try {
      std::rethrow_exception(error);
    } catch (const ScanCancelled&) {
      state_->cancel.store(true, std::memory_order_relaxed);
    } catch (const ScanTimedOut&) {
      const std::lock_guard<std::mutex> lock(mu_);
      timed_out_ = true;
    } catch (const std::exception& e) {
      mark_failed(e.what());
    } catch (...) {
      mark_failed("unknown scan failure");
    }
    complete_item();
  }

  /// Posts a stage as one scheduler item. Caller must hold mu_. `label`
  /// must be static storage (string literal): it is published in
  /// heartbeats and kept by retry re-enqueues.
  void post_locked(const char* label, std::function<void()> stage) {
    ++outstanding_;
    service_->scheduler_.enqueue(
        job_,
        [self = shared_from_this(), label, stage = std::move(stage)] {
          self->run_stage(label, stage, 0);
        },
        label);
  }

  void mark_failed(const std::string& what) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!failed_) error_ = what;
    failed_ = true;
  }

  void stage_init() {
    // Resolve a content-addressed probe NOW, not at submit(): a scan shed
    // or cancelled while queued never materializes anything, and a
    // materialization failure is a retryable stage fault like any other.
    // Unrecognized failures are wrapped TRANSIENT — regeneration from the
    // deterministic key is exactly the retry the store supports.
    if (state_->probe_key.has_value() && state_->stored_probe == nullptr) {
      try {
        state_->stored_probe = service_->probe_store_.get_or_create(*state_->probe_key);
      } catch (const ScanError&) {
        throw;  // explicit classification wins (TransientError included)
      } catch (const fault::InjectedFault&) {
        throw;  // already classified transient by run_stage
      } catch (const std::exception& error) {
        throw TransientError(std::string("probe materialization failed: ") + error.what());
      }
    }
    // Same deferred discipline for a ref-named model: the resident instance
    // is resolved (loaded on a cold key, shared on a warm one) here, never
    // at submit(), and the shared_ptr pins the store entry until finish().
    // Load failures are wrapped TRANSIENT — a flaky filesystem read or an
    // allocation failure under load is exactly what the retry layer exists
    // for; a truly corrupt checkpoint exhausts the budget and fails the scan
    // with the loader's path-carrying message.
    if (state_->model_ref.has_value() && state_->stored_model == nullptr) {
      try {
        state_->stored_model = service_->model_store_.get_or_create(*state_->model_ref);
      } catch (const ScanError&) {
        throw;
      } catch (const fault::InjectedFault&) {
        throw;
      } catch (const std::exception& error) {
        throw TransientError(std::string("model load failed: ") + error.what());
      }
    }
    // The detector's own plan, with the service's session state wired in.
    // None of the overrides has a numeric effect (cache adoption is
    // schedule-only; progress carries no data into the scan), so a
    // default-options run matches detect() byte for byte. options.pool and
    // options.cancel stay as the detector left them: the staged path never
    // enters the blocking scheduler — tensor kernels adopt scan_pool_
    // through the dispatchers' WorkerContext, and cancellation is checked
    // at every item boundary by run_stage.
    ScanPlan plan = state_->detector->plan();
    if (state_->options.progress) plan.options.progress = state_->options.progress;
    if (state_->options.early_exit.has_value()) {
      plan.options.early_exit = *state_->options.early_exit;
    }
    const Dataset& probe =
        state_->stored_probe != nullptr ? state_->stored_probe->probe : *state_->owned_probe;
    if (plan.options.external_probe_cache == nullptr && state_->stored_probe != nullptr) {
      plan.options.external_probe_cache = &state_->stored_probe->cache;
    }
    if (state_->stored_model != nullptr) {
      // Shared-model mode: alias the store entry's network. Every concurrent
      // scan of this ref reads ONE resident instance; no submit clone exists.
      staged_.emplace(std::move(plan),
                      std::shared_ptr<const Network>(state_->stored_model,
                                                     &state_->stored_model->network),
                      probe);
    } else {
      staged_.emplace(std::move(plan), *state_->model, probe);
    }
    staged_->prepare();

    const std::lock_guard<std::mutex> lock(mu_);
    num_classes_ = staged_->num_classes();
    mode_ = !staged_->early_exit_enabled() ? Mode::kMonolithic
            : staged_->async_retirement()  ? Mode::kAsyncRendezvous
                                           : Mode::kSyncBarrier;
    if (mode_ == Mode::kAsyncRendezvous) {
      // rendezvous = max(1, min_rounds) rounds, matching run_async_retire's
      // rendezvous_steps = round_steps * max(1, min_rounds).
      rendezvous_left_.assign(static_cast<std::size_t>(num_classes_),
                              std::max<std::int64_t>(1, staged_->min_rounds()));
    }
    for (std::int64_t t = 0; t < num_classes_; ++t) {
      post_locked("scan.construct", [this, t] { stage_construct(t); });
    }
  }

  void stage_construct(std::int64_t t) {
    staged_->construct_class(t);
    const std::lock_guard<std::mutex> lock(mu_);
    ++constructed_;
    switch (mode_) {
      case Mode::kMonolithic:
        // No cross-class flow: each class marches to exhaustion on its own.
        if (staged_->has_budget(t)) {
          post_locked("scan.round", [this, t] { stage_round_mono(t); });
        } else {
          post_locked("scan.finalize", [this, t] { stage_finalize(t); });
        }
        break;
      case Mode::kSyncBarrier:
        // Lockstep rounds need the full active set; round 1 starts once
        // every class is constructed (the blocking path's phase boundary).
        if (constructed_ == num_classes_) {
          for (std::int64_t u = 0; u < num_classes_; ++u) {
            if (staged_->has_budget(u)) {
              active_.push_back(u);
            } else {
              post_locked("scan.finalize", [this, u] { stage_finalize(u); });
            }
          }
          for (const std::int64_t u : active_) {
            post_locked("scan.round", [this, u] { stage_round_sync(u); });
          }
        }
        break;
      case Mode::kAsyncRendezvous:
        // A class's rendezvous rounds need no other class: start rolling
        // immediately. The cutoff still waits for all K arrivals.
        if (staged_->has_budget(t)) {
          post_locked("scan.round", [this, t] { stage_rendezvous_round(t); });
        } else {
          note_arrival_locked(t, /*more=*/false);
        }
        break;
    }
  }

  void stage_round_mono(std::int64_t t) {
    const bool more = staged_->run_round(t);
    const std::lock_guard<std::mutex> lock(mu_);
    if (more) {
      post_locked("scan.round", [this, t] { stage_round_mono(t); });
    } else {
      post_locked("scan.finalize", [this, t] { stage_finalize(t); });
    }
  }

  void stage_round_sync(std::int64_t t) {
    staged_->run_round(t);
    const std::lock_guard<std::mutex> lock(mu_);
    if (++barrier_arrived_ == static_cast<std::int64_t>(active_.size())) barrier_locked();
  }

  /// The per-round barrier, run by the round's last arriver under mu_.
  /// Mirrors run_early_exit's loop tail: drop exhausted classes to
  /// finalize, recompute the cutoff from round min_rounds on, retire
  /// outliers, relaunch the survivors. mad_cutoff() is safe here: every
  /// active class's round completed (we are the last arrival, ordered
  /// through mu_) and stopped classes hold frozen statistics.
  void barrier_locked() {
    barrier_arrived_ = 0;
    ++rounds_done_;
    std::vector<std::int64_t> next;
    for (const std::int64_t t : active_) {
      if (staged_->has_budget(t)) {
        next.push_back(t);
      } else {
        post_locked("scan.finalize", [this, t] { stage_finalize(t); });
      }
    }
    if (!next.empty() && rounds_done_ >= staged_->min_rounds()) {
      const double cutoff = staged_->mad_cutoff();
      std::vector<std::int64_t> survivors;
      for (const std::int64_t t : next) {
        if (staged_->stat(t) <= cutoff) {
          survivors.push_back(t);
        } else {
          // kRetired notifies user code — post an item rather than calling
          // under mu_ (a callback may legally call handle->cancel()).
          post_locked("scan.retire", [this, t] { stage_retire(t); });
        }
      }
      next = std::move(survivors);
    }
    active_ = std::move(next);
    for (const std::int64_t t : active_) {
      post_locked("scan.round", [this, t] { stage_round_sync(t); });
    }
  }

  void stage_retire(std::int64_t t) {
    staged_->retire_class(t);
    const std::lock_guard<std::mutex> lock(mu_);
    post_locked("scan.finalize", [this, t] { stage_finalize(t); });
  }

  void stage_rendezvous_round(std::int64_t t) {
    const bool more = staged_->run_round(t);
    const std::lock_guard<std::mutex> lock(mu_);
    auto& left = rendezvous_left_[static_cast<std::size_t>(t)];
    --left;
    if (more && left > 0) {
      post_locked("scan.round", [this, t] { stage_rendezvous_round(t); });
    } else {
      note_arrival_locked(t, more);
    }
  }

  /// Class t reached the rendezvous (ran its min rounds, or exhausted its
  /// budget / own exit first). The K-th arrival fixes the one cutoff — the
  /// only cross-class data flow of the async schedule.
  void note_arrival_locked(std::int64_t t, bool more) {
    ++arrived_;
    if (more) {
      waiting_.push_back(t);
    } else {
      post_locked("scan.finalize", [this, t] { stage_finalize(t); });
    }
    if (arrived_ == num_classes_) {
      cutoff_ = staged_->mad_cutoff();
      for (const std::int64_t u : waiting_) {
        post_locked("scan.round", [this, u] { stage_untethered_round(u); });
      }
      waiting_.clear();
    }
  }

  void stage_untethered_round(std::int64_t t) {
    double cutoff;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      cutoff = cutoff_;
    }
    // Cutoff first, before spending another round — run_async_retire's
    // phase 2b loop head.
    if (staged_->stat(t) > cutoff) {
      staged_->retire_class(t);
      const std::lock_guard<std::mutex> lock(mu_);
      post_locked("scan.finalize", [this, t] { stage_finalize(t); });
      return;
    }
    const bool more = staged_->run_round(t);
    const std::lock_guard<std::mutex> lock(mu_);
    if (more) {
      post_locked("scan.round", [this, t] { stage_untethered_round(t); });
    } else {
      post_locked("scan.finalize", [this, t] { stage_finalize(t); });
    }
  }

  void stage_finalize(std::int64_t t) {
    staged_->finalize_class(t);
    const std::lock_guard<std::mutex> lock(mu_);
    ++finalized_;
  }

  /// Item-completion accounting. The scan is terminal when its last
  /// outstanding item completes: a recorded failure -> kFailed; all K
  /// classes finalized -> kDone (completed work beats a deadline that
  /// nobody observed in time); a deadline expiry -> kTimedOut with the
  /// partial report; anything else (the cancel flag starved the chain) ->
  /// kCancelled.
  void complete_item() {
    std::vector<std::shared_ptr<ScanExecution>> launches;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_ > 0 || phase_ == Phase::kTerminal) return;
      phase_ = Phase::kTerminal;
      ScanOutcome outcome;
      if (failed_) {
        outcome.status = ScanStatus::kFailed;
        outcome.error = retries_ > 0
                            ? error_ + " (after " + std::to_string(retries_) + " retries)"
                            : error_;
        service_->failed_.fetch_add(1);
      } else if (staged_.has_value() && finalized_ == num_classes_) {
        try {
          outcome.report = staged_->take_report();
          outcome.status = ScanStatus::kDone;
          service_->completed_.fetch_add(1);
        } catch (const std::exception& e) {
          // The reduction itself failed (e.g. an injected finish fault):
          // the scan must still resolve — a throw here would escape to the
          // scheduler and leave the handle waiting forever.
          outcome = ScanOutcome{};
          outcome.status = ScanStatus::kFailed;
          outcome.error = e.what();
          service_->failed_.fetch_add(1);
        }
      } else if (timed_out_ || state_->deadline_expired()) {
        outcome.status = ScanStatus::kTimedOut;
        // The partial report: whatever stages completed, with
        // per_class_state saying how far each class got. A scan that timed
        // out before stage_init has no staged scan and no report.
        if (staged_.has_value()) {
          try {
            outcome.report = staged_->take_report();
          } catch (const std::exception&) {
            outcome.report = DetectionReport{};
          }
        }
        service_->timed_out_.fetch_add(1);
      } else {
        outcome.status = ScanStatus::kCancelled;
        service_->cancelled_.fetch_add(1);
      }
      outcome.retries = retries_;
      // Release tasks, clones, and the borrowed probe-cache pointer BEFORE
      // finish() drops the detector and the stored probe they point into.
      staged_.reset();
      state_->finish(std::move(outcome));
      service_->scheduler_.retire_job(job_);
      service_->retire_scan(state_, this, launches);
    }
    // Newly admitted scans launch outside mu_ (their launch() takes their
    // own lock and the scheduler's).
    for (const auto& exec : launches) exec->launch();
  }

  DetectionService* service_;
  std::shared_ptr<ScanState> state_;
  RoundScheduler::JobPtr job_;

  std::mutex mu_;
  Phase phase_ = Phase::kQueued;
  Mode mode_ = Mode::kMonolithic;
  std::optional<StagedScan> staged_;
  std::int64_t outstanding_ = 0;  // items posted, not yet completed
  std::int64_t num_classes_ = -1;
  std::int64_t constructed_ = 0;
  std::int64_t finalized_ = 0;
  bool failed_ = false;
  bool timed_out_ = false;
  std::int64_t retries_ = 0;  // stage items re-enqueued after transient failures
  std::string error_;

  // kSyncBarrier bookkeeping.
  std::vector<std::int64_t> active_;
  std::int64_t barrier_arrived_ = 0;
  std::int64_t rounds_done_ = 0;

  // kAsyncRendezvous bookkeeping.
  std::vector<std::int64_t> rendezvous_left_;
  std::vector<std::int64_t> waiting_;
  std::int64_t arrived_ = 0;
  double cutoff_ = 0.0;
};

}  // namespace detail

namespace {

using detail::ScanExecution;
using detail::ScanState;

const std::shared_ptr<ScanState>& require_state(const std::shared_ptr<ScanState>& state) {
  if (state == nullptr) throw std::logic_error("ScanHandle: empty handle");
  return state;
}

/// Mirrors ThreadPool::global()'s sizing so a default service behaves like
/// the pool every detect() call used before the service existed.
int resolve_scan_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("USB_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::clamp(hw, 1, 16);
}

int resolve_dispatchers(const DetectionServiceConfig& config) {
  if (config.round_dispatchers > 0) return config.round_dispatchers;
  return std::max(1, config.max_concurrent_scans);
}

}  // namespace

std::uint64_t ScanHandle::id() const { return require_state(state_)->id; }

ScanStatus ScanHandle::poll() const {
  const auto& state = require_state(state_);
  const std::lock_guard<std::mutex> lock(state->mutex);
  return state->outcome.status;
}

const ScanOutcome& ScanHandle::wait() const {
  const auto& state = require_state(state_);
  std::unique_lock<std::mutex> lock(state->mutex);
  if (state->has_deadline) {
    state->done_cv.wait_until(lock, state->deadline, [&state] { return state->terminal; });
    if (!state->terminal) {
      // Deadline passed with the scan unresolved. Nudge it: a QUEUED scan
      // resolves kTimedOut right now (it would otherwise sit in the
      // submission queue untouched — no dispatcher ever looks at it); an
      // in-flight one resolves at its next stage boundary, which the
      // final wait below observes.
      std::shared_ptr<ScanExecution> execution = state->execution;
      lock.unlock();
      if (execution != nullptr) execution->request_timeout();
      lock.lock();
    }
  }
  state->done_cv.wait(lock, [&state] { return state->terminal; });
  return state->outcome;
}

ScanStatus ScanHandle::wait_for(double seconds) const {
  const auto& state = require_state(state_);
  const auto wait_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(std::max(0.0, seconds)));
  std::unique_lock<std::mutex> lock(state->mutex);
  if (state->has_deadline) {
    // Same nudge as wait(): if the SCAN deadline lands inside our window
    // and passes unresolved, push a queued scan to kTimedOut instead of
    // reporting kQueued forever.
    state->done_cv.wait_until(lock, std::min(wait_deadline, state->deadline),
                              [&state] { return state->terminal; });
    if (!state->terminal && state->deadline_expired()) {
      std::shared_ptr<ScanExecution> execution = state->execution;
      lock.unlock();
      if (execution != nullptr) execution->request_timeout();
      lock.lock();
    }
  }
  state->done_cv.wait_until(lock, wait_deadline, [&state] { return state->terminal; });
  return state->outcome.status;
}

bool ScanHandle::cancel() const {
  const auto& state = require_state(state_);
  state->cancel.store(true, std::memory_order_relaxed);
  std::shared_ptr<ScanExecution> execution;
  {
    const std::lock_guard<std::mutex> lock(state->mutex);
    if (state->terminal) return false;
    execution = state->execution;
  }
  // Outside state->mutex: request_cancel takes the execution's own lock
  // (and may finish the scan, which re-takes state->mutex).
  if (execution != nullptr) execution->request_cancel();
  return true;
}

DetectionService::DetectionService(DetectionServiceConfig config)
    : config_(config),
      scan_pool_(resolve_scan_threads(config.scan_threads)),
      probe_store_(ProbeStoreOptions{config.eval_batch_size, config.probe_store_max_bytes}),
      model_store_(ModelStoreOptions{config.model_store_max_bytes}),
      scheduler_(RoundScheduler::Config{resolve_dispatchers(config), &scan_pool_}) {
  if (config_.stuck_item_seconds > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

DetectionService::~DetectionService() {
  // The watchdog goes first: it walks live_ and calls back into scans, so
  // it must be gone before shutdown starts resolving them.
  if (watchdog_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(watchdog_mutex_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
  std::vector<std::shared_ptr<ScanState>> snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
    snapshot.assign(live_.begin(), live_.end());
  }
  queue_space_.notify_all();  // blocked submitters must observe the shutdown
  // Queued scans resolve to kCancelled immediately; admitted scans hit the
  // flag at their next stage boundary. Cancel OUTSIDE mutex_: request_cancel
  // re-enters the service through retire_scan.
  for (const auto& state : snapshot) {
    state->cancel.store(true, std::memory_order_relaxed);
    std::shared_ptr<ScanExecution> execution;
    {
      const std::lock_guard<std::mutex> lock(state->mutex);
      execution = state->execution;
    }
    if (execution != nullptr) execution->request_cancel();
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return live_.empty(); });
  }
  // Members now destruct; scheduler_ (declared last) goes first, joining
  // the dispatchers while everything they can touch is still alive.
}

ScanHandle DetectionService::submit(ScanRequest request) {
  if ((request.model == nullptr) == !request.model_ref.has_value()) {
    throw std::invalid_argument("ScanRequest: set exactly one of model / model_ref");
  }
  if (request.model_ref.has_value() && !request.model_ref->valid()) {
    throw std::invalid_argument(
        "ScanRequest: model_ref must set exactly one of checkpoint_path / zoo spec");
  }
  if (request.detector == nullptr) throw std::invalid_argument("ScanRequest: null detector");
  if (!request.probe_key.has_value() && request.probe == nullptr) {
    throw std::invalid_argument("ScanRequest: neither probe_key nor probe set");
  }

  // Admission control BEFORE any expensive work: a rejected request costs
  // nothing, and a blocked one reserves its queue slot first so the clone
  // below can never overshoot the cap (pending = queued + reserved). The
  // memory watermark gates the same way — byte backpressure, released when
  // a retiring scan's clone/probe bytes drain the budget.
  const bool bounded = config_.max_queued > 0;
  const bool byte_gated = config_.max_resident_bytes > 0;
  if (bounded || byte_gated) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutting_down_) throw std::runtime_error("DetectionService: submit after shutdown");
    const auto admissible = [this, bounded, byte_gated] {
      if (bounded && pending_depth_locked() >= config_.max_queued) return false;
      if (byte_gated && over_byte_watermark_locked()) return false;
      return true;
    };
    if (!admissible()) {
      if (config_.admission_policy == AdmissionPolicy::kReject) {
        throw QueueFull(pending_depth_locked());
      }
      queue_space_.wait(lock, [this, &admissible] { return shutting_down_ || admissible(); });
      if (shutting_down_) throw std::runtime_error("DetectionService: submit after shutdown");
    }
    if (bounded) ++reserved_slots_;
  }
  // Releases the reservation on every early exit; disarmed once the request
  // is actually queued (the queue entry then carries the slot).
  auto release_reservation = [this, bounded]() {
    if (!bounded) return;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --reserved_slots_;
    }
    queue_space_.notify_one();
  };

  std::shared_ptr<ScanState> state;
  std::shared_ptr<ScanExecution> execution;
  bool launch_now = false;
  try {
    state = std::make_shared<ScanState>();
    state->id = next_id_.fetch_add(1);
    if (request.model != nullptr) {
      // Deep copy now: the caller's model may be mutated or destroyed after
      // submit(), and concurrent requests naming the same model must not
      // race on its per-instance forward caches. The scan still clones this
      // clone per class, so reports match detect() on the original bit for
      // bit.
      state->model = std::make_unique<Network>(clone_network(*request.model));
      const std::int64_t clone_bytes = network_resident_bytes(*state->model);
      if (clone_bytes > 0) {
        state->clone_budget_bytes.store(clone_bytes);
        MemoryBudget::process().add(MemoryBudget::Category::kModelClones, clone_bytes);
      }
    } else {
      // Ref-based request: NO submit-time deep copy. The resident instance
      // is resolved in the scan's init stage and shared with every other
      // scan naming the ref; its bytes are the ModelStore's
      // (kResidentModels), accounted once per model, not per request.
      state->model_ref = std::move(request.model_ref);
    }
    state->detector = std::move(request.detector);
    if (request.probe_key.has_value()) {
      // Deferred to the scan's init stage; see submit()'s contract.
      state->probe_key = *request.probe_key;
    } else {
      state->owned_probe = std::make_unique<Dataset>(*request.probe);
    }
    state->options = std::move(request.options);
    state->max_retries = state->options.max_retries >= 0 ? state->options.max_retries
                                                         : config_.default_max_retries;
    state->retry_backoff_seconds = std::max(
        0.0, state->options.retry_backoff_seconds >= 0 ? state->options.retry_backoff_seconds
                                                       : config_.default_retry_backoff_seconds);
    const double deadline_seconds = state->options.deadline_seconds > 0
                                        ? state->options.deadline_seconds
                                        : config_.default_deadline_seconds;
    if (deadline_seconds > 0) {
      state->has_deadline = true;
      state->deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(deadline_seconds));
    }
    execution = std::make_shared<ScanExecution>(*this, state);
    state->execution = execution;  // pre-publication: no lock needed yet

    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) throw std::runtime_error("DetectionService: submit after shutdown");
    live_.push_back(state);
    if (admitted_ < std::max(1, config_.max_concurrent_scans)) {
      ++admitted_;
      launch_now = true;
    } else {
      queue_.push_back(execution);
    }
    if (bounded) --reserved_slots_;  // the queue entry (or admission) holds the slot
  } catch (...) {
    release_reservation();
    throw;
  }
  submitted_.fetch_add(1);
  if (launch_now) execution->launch();
  // Watermark check AFTER enqueueing: the newcomer is itself a shed
  // candidate (it may be the lowest-priority newest queued scan). Victims
  // resolve outside mutex_ — request_shed re-enters through retire_scan.
  std::vector<std::shared_ptr<ScanExecution>> victims;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!shutting_down_) victims = collect_shed_victims_locked();
  }
  for (const auto& victim : victims) victim->request_shed();
  return ScanHandle(std::move(state));
}

void DetectionService::drain() {
  std::vector<std::shared_ptr<ScanState>> snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snapshot.assign(live_.begin(), live_.end());
  }
  for (const auto& state : snapshot) {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done_cv.wait(lock, [&state] { return state->terminal; });
  }
}

void DetectionService::retire_scan(const std::shared_ptr<detail::ScanState>& state,
                                   const detail::ScanExecution* exec,
                                   std::vector<std::shared_ptr<detail::ScanExecution>>& launches) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    live_.erase(std::find(live_.begin(), live_.end(), state));
    const auto queued = std::find_if(queue_.begin(), queue_.end(),
                                     [exec](const auto& entry) { return entry.get() == exec; });
    if (queued != queue_.end()) {
      // Cancelled before admission: remove it; no slot opened.
      queue_.erase(queued);
    } else {
      // Admitted (or collected for launch concurrently with a queued
      // cancel — the increment already happened either way): free the slot
      // and collect successors. The caller launches them outside all locks.
      --admitted_;
      const std::int64_t cap = std::max(1, config_.max_concurrent_scans);
      while (!shutting_down_ && admitted_ < cap && !queue_.empty()) {
        launches.push_back(queue_.front());
        queue_.pop_front();
        ++admitted_;
      }
    }
    if (live_.empty()) idle_.notify_all();
  }
  queue_space_.notify_all();  // pending depth shrank (or shutdown progressed)
}

bool DetectionService::over_byte_watermark_locked() const {
  if (config_.max_resident_bytes <= 0) return false;
  // With no live scan there is nothing that can drain the budget — blocking
  // an empty service on externally-owned bytes (another service's probe
  // store, a standalone arena) would deadlock, so the first scan is always
  // admitted.
  if (live_.empty()) return false;
  return MemoryBudget::process().bytes() > config_.max_resident_bytes;
}

std::vector<std::shared_ptr<detail::ScanExecution>>
DetectionService::collect_shed_victims_locked() {
  std::vector<std::shared_ptr<ScanExecution>> victims;
  if (config_.shed_queue_depth <= 0 && config_.max_resident_bytes <= 0) return victims;
  std::vector<std::shared_ptr<ScanExecution>> candidates(queue_.begin(), queue_.end());
  // Project the budget as if each victim's clone bytes were already
  // released (its probe is never materialized while queued), so one sweep
  // picks exactly enough victims.
  std::int64_t projected_bytes = MemoryBudget::process().bytes();
  const auto over_watermark = [this, &candidates, &projected_bytes] {
    if (config_.shed_queue_depth > 0 &&
        static_cast<std::int64_t>(candidates.size()) > config_.shed_queue_depth) {
      return true;
    }
    return config_.max_resident_bytes > 0 && !candidates.empty() &&
           projected_bytes > config_.max_resident_bytes;
  };
  while (over_watermark()) {
    // Lowest priority first; among equals the NEWEST (queue_ is submit
    // order, so a later index is newer — <= keeps replacing on ties).
    std::size_t best = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const auto& state = candidates[i]->scan_state();
      if (state->options.unsheddable) continue;
      if (best == candidates.size() ||
          state->options.priority <= candidates[best]->scan_state()->options.priority) {
        best = i;
      }
    }
    if (best == candidates.size()) break;  // everything left is unsheddable
    projected_bytes -= candidates[best]->scan_state()->clone_budget_bytes.load();
    victims.push_back(candidates[best]);
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(best));
  }
  return victims;
}

ServiceHealth DetectionService::health() const {
  ServiceHealth health;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    health.queued_scans = static_cast<std::int64_t>(queue_.size());
    health.admitted_scans = admitted_;
  }
  health.scans_submitted = submitted_.load();
  health.scans_completed = completed_.load();
  health.scans_cancelled = cancelled_.load();
  health.scans_failed = failed_.load();
  health.scans_timed_out = timed_out_.load();
  health.scans_shed = shed_.load();
  health.items_retried = items_retried_.load();
  health.items_deferred = scheduler_.items_deferred();
  const MemoryBudget& budget = MemoryBudget::process();
  health.budget_bytes = budget.bytes();
  health.budget_high_water_bytes = budget.high_water_bytes();
  health.budget_limit_bytes = config_.max_resident_bytes;
  std::vector<RoundScheduler::InFlightItem> items;
  scheduler_.sample_in_flight(items);
  health.in_flight_items = static_cast<std::int64_t>(items.size());
  for (const auto& item : items) {
    if (health.oldest_item_point.empty() || item.seconds > health.oldest_item_seconds) {
      health.oldest_item_seconds = item.seconds;
      health.oldest_item_point = item.point != nullptr ? item.point : "";
      if (health.oldest_item_point.empty()) health.oldest_item_point = "item";
      health.oldest_item_scan = item.owner;
    }
    if (config_.stuck_item_seconds > 0 && item.seconds >= config_.stuck_item_seconds) {
      ++health.stuck_items;
    }
  }
  health.stuck_flagged_total = stuck_flagged_.load();
  return health;
}

void DetectionService::watchdog_loop() {
  // Tick a few times per stuck bound so a freshly stuck item is flagged
  // within ~1.25x the configured threshold, capped so an idle service
  // wakes at most once a second.
  const double tick_seconds = std::clamp(config_.stuck_item_seconds / 4.0, 0.001, 1.0);
  const auto period = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(tick_seconds));
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, period, [this] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    lock.unlock();
    watchdog_tick();
    lock.lock();
  }
}

void DetectionService::watchdog_tick() {
  // Re-check the shed watermarks: running scans grow the budget (arena
  // warm-up, probe materializations) without any submit() to notice.
  std::vector<std::shared_ptr<ScanExecution>> victims;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!shutting_down_) victims = collect_shed_victims_locked();
  }
  for (const auto& victim : victims) victim->request_shed();

  std::vector<RoundScheduler::InFlightItem> items;
  scheduler_.sample_in_flight(items);
  std::vector<std::pair<int, std::int64_t>> flagged_now;
  for (const auto& item : items) {
    if (item.seconds < config_.stuck_item_seconds) continue;
    const std::pair<int, std::int64_t> key{item.dispatcher, item.start_ns};
    flagged_now.push_back(key);
    const bool already =
        std::find(watchdog_flagged_.begin(), watchdog_flagged_.end(), key) !=
        watchdog_flagged_.end();
    if (already) continue;  // one flag per item
    stuck_flagged_.fetch_add(1);
    if (!config_.fail_stuck_scans || item.owner == 0) continue;
    std::shared_ptr<ScanState> owner;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& state : live_) {
        if (state->id == item.owner) {
          owner = state;
          break;
        }
      }
    }
    if (owner == nullptr) continue;  // resolved between sample and lookup
    std::shared_ptr<ScanExecution> execution;
    {
      const std::lock_guard<std::mutex> lock(owner->mutex);
      execution = owner->execution;
    }
    if (execution != nullptr) execution->mark_stuck(item.point);
  }
  // Keep only keys still stuck in flight: finished items age out, and a
  // recycled (dispatcher, start_ns) pair can be re-flagged correctly.
  watchdog_flagged_ = std::move(flagged_now);
}

}  // namespace usb
