#include "service/detection_service.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <utility>

#include "nn/checkpoint.h"
#include "utils/fault_injection.h"

namespace usb {

std::string to_string(ScanStatus status) {
  switch (status) {
    case ScanStatus::kQueued: return "queued";
    case ScanStatus::kRunning: return "running";
    case ScanStatus::kDone: return "done";
    case ScanStatus::kCancelled: return "cancelled";
    case ScanStatus::kFailed: return "failed";
    case ScanStatus::kTimedOut: return "timed_out";
  }
  return "unknown";
}

namespace detail {

/// Shared between the submitting thread, the scan's execution, and any
/// number of ScanHandle copies. The request payload (model clone, detector,
/// probe) is released the moment the scan reaches a terminal status; the
/// outcome stays alive for as long as any handle does.
struct ScanState {
  std::uint64_t id = 0;

  // Request payload. Touched only by submit() (filling) and the execution's
  // stages (consuming + releasing) — never by handles.
  std::unique_ptr<Network> model;
  DetectorPtr detector;
  std::shared_ptr<const ProbeData> stored_probe;  // probe_key requests
  std::unique_ptr<Dataset> owned_probe;           // explicit-probe requests
  ScanOptions options;

  std::atomic<bool> cancel{false};

  // Deadline, fixed at submit() from ScanOptions::deadline_seconds (falling
  // back to the service default). Immutable after publication, so
  // deadline_expired() needs no lock.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  [[nodiscard]] bool deadline_expired() const {
    return has_deadline && std::chrono::steady_clock::now() >= deadline;
  }

  mutable std::mutex mutex;
  mutable std::condition_variable done_cv;
  ScanOutcome outcome;  // outcome.status doubles as the live status
  bool terminal = false;

  /// The scan's execution, for cancel routing. Written once by submit()
  /// before the state is published; read under `mutex`; cleared by finish()
  /// (breaking the execution<->state ownership cycle).
  std::shared_ptr<ScanExecution> execution;

  void finish(ScanOutcome final_outcome) {
    std::shared_ptr<ScanExecution> exec;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      outcome = std::move(final_outcome);
      terminal = true;
      exec = std::move(execution);
    }
    done_cv.notify_all();
    // Drop the payload: a long-lived handle must not pin a model clone or
    // a probe materialization. `exec` is released last, outside the lock
    // (the execution itself calls finish() with its own lock held; a live
    // caller always holds another reference).
    model.reset();
    detector.reset();
    stored_probe.reset();
    owned_probe.reset();
  }
};

/// One admitted scan's replay of a blocking schedule as discrete items on
/// the service's global RoundScheduler. Message-driven: every stage's
/// completion decides (under mu_) which stages to post next; nothing ever
/// blocks waiting for another stage, so a single dispatcher can interleave
/// any number of scans and cancellation simply stops posting.
///
/// The three modes replicate class_scan_scheduler.cpp's three schedules
/// stage for stage:
///  - kMonolithic (early exit disabled): construct -> rounds until budget
///    exhausted -> finalize, per class, no cross-class flow. Identical to
///    run() by the run_steps slicing contract.
///  - kSyncBarrier: all classes constructed, then lockstep rounds; the
///    LAST arriver of each round recomputes the MAD cutoff (from round
///    min_rounds on) over ALL classes and retires the outliers — the same
///    population, formula, and logical point as run_early_exit.
///  - kAsyncRendezvous: each class runs max(1, min_rounds) rounds (or to
///    exhaustion) and "arrives"; the K-th arrival fixes the single cutoff;
///    untethered classes then check it BEFORE every further round, exactly
///    like run_async_retire.
///
/// Which dispatcher runs a stage, and how stages of different scans
/// interleave, is explicitly schedule-only — every cutoff is a pure
/// function of class-deterministic statistics read at those fixed points.
class ScanExecution : public std::enable_shared_from_this<ScanExecution> {
 public:
  ScanExecution(DetectionService& service, std::shared_ptr<ScanState> state)
      : service_(&service), state_(std::move(state)) {}

  /// Admits the scan: creates its scheduler job (at the current fair-share
  /// frontier), marks it kRunning, and posts the init stage. No-op if the
  /// scan was cancelled while still queued. A scan admitted PAST its
  /// deadline resolves kTimedOut right here, without ever creating a job or
  /// consuming a dispatcher — its slot goes straight to the next queued
  /// scan.
  void launch() {
    std::vector<std::shared_ptr<ScanExecution>> launches;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (phase_ != Phase::kQueued) return;
      if (state_->deadline_expired()) {
        phase_ = Phase::kTerminal;
        state_->finish(ScanOutcome{ScanStatus::kTimedOut, {}, {}});
        service_->timed_out_.fetch_add(1);
        service_->retire_scan(state_, this, launches);
      } else {
        phase_ = Phase::kLaunched;
        {
          const std::lock_guard<std::mutex> state_lock(state_->mutex);
          state_->outcome.status = ScanStatus::kRunning;
        }
        RoundScheduler::JobOptions job_options;
        job_options.priority = state_->options.priority;
        job_options.weight = state_->options.fair_weight;
        // Defense in depth: run_stage already routes stage exceptions, so
        // only an escape from the completion path itself lands here — it
        // still fails ONLY this scan, never the dispatcher crew.
        job_options.on_item_error = [self = shared_from_this()](const std::exception_ptr& error) {
          self->on_item_error(error);
        };
        job_ = service_->scheduler_.create_job(std::move(job_options));
        outstanding_ = 1;
        service_->scheduler_.enqueue(job_, [self = shared_from_this()] {
          self->run_stage([&self] { self->stage_init(); });
        });
      }
    }
    for (const auto& exec : launches) exec->launch();
  }

  /// Called with state_->cancel already set. Resolves a still-queued scan
  /// (or a launched one whose first item never started) immediately;
  /// otherwise the flag drains the in-flight chain cooperatively at the
  /// next item boundary. A cancelled scan already past its deadline
  /// resolves kTimedOut, not kCancelled — the deadline expired first, and
  /// shutdown must not mask it.
  void request_cancel() { request_abort(/*timeout=*/false); }

  /// Deadline nudge (from a waiter observing expiry): like request_cancel
  /// but a no-op unless the deadline really is expired, and it does NOT
  /// set the cancel flag — an in-flight chain keeps draining through the
  /// run_stage deadline check instead.
  void request_timeout() {
    if (!state_->deadline_expired()) return;
    request_abort(/*timeout=*/true);
  }

 private:
  enum class Phase { kQueued, kLaunched, kTerminal };
  enum class Mode { kMonolithic, kSyncBarrier, kAsyncRendezvous };

  /// The common immediate-resolution path behind request_cancel (timeout =
  /// false) and request_timeout (true). See request_cancel for semantics.
  void request_abort(bool timeout) {
    std::vector<std::shared_ptr<ScanExecution>> launches;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (phase_ == Phase::kTerminal) return;
      if (phase_ == Phase::kLaunched) {
        const std::int64_t dropped = service_->scheduler_.drop_queued_if_unstarted(job_);
        if (dropped < 0) {
          // A stage ran or is running: drain cooperatively. For a timeout
          // nudge, record the expiry so the chain resolves kTimedOut even
          // if it races a clock that has not been re-read yet.
          if (timeout) timed_out_ = true;
          return;
        }
        outstanding_ -= dropped;  // the init item, dropped unrun
      }
      phase_ = Phase::kTerminal;
      if (timeout || state_->deadline_expired()) {
        state_->finish(ScanOutcome{ScanStatus::kTimedOut, {}, {}});
        service_->timed_out_.fetch_add(1);
      } else {
        state_->finish(ScanOutcome{ScanStatus::kCancelled, {}, {}});
        service_->cancelled_.fetch_add(1);
      }
      service_->retire_scan(state_, this, launches);
    }
    for (const auto& exec : launches) exec->launch();
  }

  /// Every scheduler item: skip the stage if the scan is past its
  /// deadline, cancelled, or failed (the chain then drains), route
  /// exceptions into the outcome, and run the completion accounting. The
  /// whole item runs under a FaultScope tagged with the scan id, so
  /// injected faults scoped to one scan can never leak into a concurrent
  /// healthy one (tests/test_fault_injection.cpp).
  void run_stage(const std::function<void()>& stage) {
    const fault::FaultScope fault_scope(state_->id);
    bool skip = false;
    if (state_->deadline_expired()) {
      const std::lock_guard<std::mutex> lock(mu_);
      timed_out_ = true;
      skip = true;
    }
    if (!skip) skip = state_->cancel.load(std::memory_order_relaxed);
    if (!skip) {
      const std::lock_guard<std::mutex> lock(mu_);
      skip = failed_ || timed_out_;
    }
    if (!skip) {
      try {
        stage();
      } catch (const ScanCancelled&) {
        state_->cancel.store(true, std::memory_order_relaxed);
      } catch (const ScanTimedOut&) {
        const std::lock_guard<std::mutex> lock(mu_);
        timed_out_ = true;
      } catch (const std::exception& error) {
        mark_failed(error.what());
      } catch (...) {
        mark_failed("unknown scan failure");
      }
    }
    complete_item();
  }

  /// RoundScheduler's route-to-owner handler: anything that escaped an
  /// item of this scan (run_stage catches stage exceptions, so this is the
  /// completion path's own failure) is classified exactly like a stage
  /// exception, then the item is completed — the throwing item never
  /// reached its own complete_item.
  void on_item_error(const std::exception_ptr& error) {
    try {
      std::rethrow_exception(error);
    } catch (const ScanCancelled&) {
      state_->cancel.store(true, std::memory_order_relaxed);
    } catch (const ScanTimedOut&) {
      const std::lock_guard<std::mutex> lock(mu_);
      timed_out_ = true;
    } catch (const std::exception& e) {
      mark_failed(e.what());
    } catch (...) {
      mark_failed("unknown scan failure");
    }
    complete_item();
  }

  /// Posts a stage as one scheduler item. Caller must hold mu_.
  void post_locked(std::function<void()> stage) {
    ++outstanding_;
    service_->scheduler_.enqueue(
        job_, [self = shared_from_this(), stage = std::move(stage)] { self->run_stage(stage); });
  }

  void mark_failed(const std::string& what) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!failed_) error_ = what;
    failed_ = true;
  }

  void stage_init() {
    // The detector's own plan, with the service's session state wired in.
    // None of the overrides has a numeric effect (cache adoption is
    // schedule-only; progress carries no data into the scan), so a
    // default-options run matches detect() byte for byte. options.pool and
    // options.cancel stay as the detector left them: the staged path never
    // enters the blocking scheduler — tensor kernels adopt scan_pool_
    // through the dispatchers' WorkerContext, and cancellation is checked
    // at every item boundary by run_stage.
    ScanPlan plan = state_->detector->plan();
    if (state_->options.progress) plan.options.progress = state_->options.progress;
    if (state_->options.early_exit.has_value()) {
      plan.options.early_exit = *state_->options.early_exit;
    }
    const Dataset& probe =
        state_->stored_probe != nullptr ? state_->stored_probe->probe : *state_->owned_probe;
    if (plan.options.external_probe_cache == nullptr && state_->stored_probe != nullptr) {
      plan.options.external_probe_cache = &state_->stored_probe->cache;
    }
    staged_.emplace(std::move(plan), *state_->model, probe);
    staged_->prepare();

    const std::lock_guard<std::mutex> lock(mu_);
    num_classes_ = staged_->num_classes();
    mode_ = !staged_->early_exit_enabled() ? Mode::kMonolithic
            : staged_->async_retirement()  ? Mode::kAsyncRendezvous
                                           : Mode::kSyncBarrier;
    if (mode_ == Mode::kAsyncRendezvous) {
      // rendezvous = max(1, min_rounds) rounds, matching run_async_retire's
      // rendezvous_steps = round_steps * max(1, min_rounds).
      rendezvous_left_.assign(static_cast<std::size_t>(num_classes_),
                              std::max<std::int64_t>(1, staged_->min_rounds()));
    }
    for (std::int64_t t = 0; t < num_classes_; ++t) {
      post_locked([this, t] { stage_construct(t); });
    }
  }

  void stage_construct(std::int64_t t) {
    staged_->construct_class(t);
    const std::lock_guard<std::mutex> lock(mu_);
    ++constructed_;
    switch (mode_) {
      case Mode::kMonolithic:
        // No cross-class flow: each class marches to exhaustion on its own.
        if (staged_->has_budget(t)) {
          post_locked([this, t] { stage_round_mono(t); });
        } else {
          post_locked([this, t] { stage_finalize(t); });
        }
        break;
      case Mode::kSyncBarrier:
        // Lockstep rounds need the full active set; round 1 starts once
        // every class is constructed (the blocking path's phase boundary).
        if (constructed_ == num_classes_) {
          for (std::int64_t u = 0; u < num_classes_; ++u) {
            if (staged_->has_budget(u)) {
              active_.push_back(u);
            } else {
              post_locked([this, u] { stage_finalize(u); });
            }
          }
          for (const std::int64_t u : active_) {
            post_locked([this, u] { stage_round_sync(u); });
          }
        }
        break;
      case Mode::kAsyncRendezvous:
        // A class's rendezvous rounds need no other class: start rolling
        // immediately. The cutoff still waits for all K arrivals.
        if (staged_->has_budget(t)) {
          post_locked([this, t] { stage_rendezvous_round(t); });
        } else {
          note_arrival_locked(t, /*more=*/false);
        }
        break;
    }
  }

  void stage_round_mono(std::int64_t t) {
    const bool more = staged_->run_round(t);
    const std::lock_guard<std::mutex> lock(mu_);
    if (more) {
      post_locked([this, t] { stage_round_mono(t); });
    } else {
      post_locked([this, t] { stage_finalize(t); });
    }
  }

  void stage_round_sync(std::int64_t t) {
    staged_->run_round(t);
    const std::lock_guard<std::mutex> lock(mu_);
    if (++barrier_arrived_ == static_cast<std::int64_t>(active_.size())) barrier_locked();
  }

  /// The per-round barrier, run by the round's last arriver under mu_.
  /// Mirrors run_early_exit's loop tail: drop exhausted classes to
  /// finalize, recompute the cutoff from round min_rounds on, retire
  /// outliers, relaunch the survivors. mad_cutoff() is safe here: every
  /// active class's round completed (we are the last arrival, ordered
  /// through mu_) and stopped classes hold frozen statistics.
  void barrier_locked() {
    barrier_arrived_ = 0;
    ++rounds_done_;
    std::vector<std::int64_t> next;
    for (const std::int64_t t : active_) {
      if (staged_->has_budget(t)) {
        next.push_back(t);
      } else {
        post_locked([this, t] { stage_finalize(t); });
      }
    }
    if (!next.empty() && rounds_done_ >= staged_->min_rounds()) {
      const double cutoff = staged_->mad_cutoff();
      std::vector<std::int64_t> survivors;
      for (const std::int64_t t : next) {
        if (staged_->stat(t) <= cutoff) {
          survivors.push_back(t);
        } else {
          // kRetired notifies user code — post an item rather than calling
          // under mu_ (a callback may legally call handle->cancel()).
          post_locked([this, t] { stage_retire(t); });
        }
      }
      next = std::move(survivors);
    }
    active_ = std::move(next);
    for (const std::int64_t t : active_) {
      post_locked([this, t] { stage_round_sync(t); });
    }
  }

  void stage_retire(std::int64_t t) {
    staged_->retire_class(t);
    const std::lock_guard<std::mutex> lock(mu_);
    post_locked([this, t] { stage_finalize(t); });
  }

  void stage_rendezvous_round(std::int64_t t) {
    const bool more = staged_->run_round(t);
    const std::lock_guard<std::mutex> lock(mu_);
    auto& left = rendezvous_left_[static_cast<std::size_t>(t)];
    --left;
    if (more && left > 0) {
      post_locked([this, t] { stage_rendezvous_round(t); });
    } else {
      note_arrival_locked(t, more);
    }
  }

  /// Class t reached the rendezvous (ran its min rounds, or exhausted its
  /// budget / own exit first). The K-th arrival fixes the one cutoff — the
  /// only cross-class data flow of the async schedule.
  void note_arrival_locked(std::int64_t t, bool more) {
    ++arrived_;
    if (more) {
      waiting_.push_back(t);
    } else {
      post_locked([this, t] { stage_finalize(t); });
    }
    if (arrived_ == num_classes_) {
      cutoff_ = staged_->mad_cutoff();
      for (const std::int64_t u : waiting_) {
        post_locked([this, u] { stage_untethered_round(u); });
      }
      waiting_.clear();
    }
  }

  void stage_untethered_round(std::int64_t t) {
    double cutoff;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      cutoff = cutoff_;
    }
    // Cutoff first, before spending another round — run_async_retire's
    // phase 2b loop head.
    if (staged_->stat(t) > cutoff) {
      staged_->retire_class(t);
      const std::lock_guard<std::mutex> lock(mu_);
      post_locked([this, t] { stage_finalize(t); });
      return;
    }
    const bool more = staged_->run_round(t);
    const std::lock_guard<std::mutex> lock(mu_);
    if (more) {
      post_locked([this, t] { stage_untethered_round(t); });
    } else {
      post_locked([this, t] { stage_finalize(t); });
    }
  }

  void stage_finalize(std::int64_t t) {
    staged_->finalize_class(t);
    const std::lock_guard<std::mutex> lock(mu_);
    ++finalized_;
  }

  /// Item-completion accounting. The scan is terminal when its last
  /// outstanding item completes: a recorded failure -> kFailed; all K
  /// classes finalized -> kDone (completed work beats a deadline that
  /// nobody observed in time); a deadline expiry -> kTimedOut with the
  /// partial report; anything else (the cancel flag starved the chain) ->
  /// kCancelled.
  void complete_item() {
    std::vector<std::shared_ptr<ScanExecution>> launches;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_ > 0 || phase_ == Phase::kTerminal) return;
      phase_ = Phase::kTerminal;
      ScanOutcome outcome;
      if (failed_) {
        outcome.status = ScanStatus::kFailed;
        outcome.error = error_;
        service_->failed_.fetch_add(1);
      } else if (staged_.has_value() && finalized_ == num_classes_) {
        try {
          outcome.report = staged_->take_report();
          outcome.status = ScanStatus::kDone;
          service_->completed_.fetch_add(1);
        } catch (const std::exception& e) {
          // The reduction itself failed (e.g. an injected finish fault):
          // the scan must still resolve — a throw here would escape to the
          // scheduler and leave the handle waiting forever.
          outcome = ScanOutcome{};
          outcome.status = ScanStatus::kFailed;
          outcome.error = e.what();
          service_->failed_.fetch_add(1);
        }
      } else if (timed_out_ || state_->deadline_expired()) {
        outcome.status = ScanStatus::kTimedOut;
        // The partial report: whatever stages completed, with
        // per_class_state saying how far each class got. A scan that timed
        // out before stage_init has no staged scan and no report.
        if (staged_.has_value()) {
          try {
            outcome.report = staged_->take_report();
          } catch (const std::exception&) {
            outcome.report = DetectionReport{};
          }
        }
        service_->timed_out_.fetch_add(1);
      } else {
        outcome.status = ScanStatus::kCancelled;
        service_->cancelled_.fetch_add(1);
      }
      // Release tasks, clones, and the borrowed probe-cache pointer BEFORE
      // finish() drops the detector and the stored probe they point into.
      staged_.reset();
      state_->finish(std::move(outcome));
      service_->scheduler_.retire_job(job_);
      service_->retire_scan(state_, this, launches);
    }
    // Newly admitted scans launch outside mu_ (their launch() takes their
    // own lock and the scheduler's).
    for (const auto& exec : launches) exec->launch();
  }

  DetectionService* service_;
  std::shared_ptr<ScanState> state_;
  RoundScheduler::JobPtr job_;

  std::mutex mu_;
  Phase phase_ = Phase::kQueued;
  Mode mode_ = Mode::kMonolithic;
  std::optional<StagedScan> staged_;
  std::int64_t outstanding_ = 0;  // items posted, not yet completed
  std::int64_t num_classes_ = -1;
  std::int64_t constructed_ = 0;
  std::int64_t finalized_ = 0;
  bool failed_ = false;
  bool timed_out_ = false;
  std::string error_;

  // kSyncBarrier bookkeeping.
  std::vector<std::int64_t> active_;
  std::int64_t barrier_arrived_ = 0;
  std::int64_t rounds_done_ = 0;

  // kAsyncRendezvous bookkeeping.
  std::vector<std::int64_t> rendezvous_left_;
  std::vector<std::int64_t> waiting_;
  std::int64_t arrived_ = 0;
  double cutoff_ = 0.0;
};

}  // namespace detail

namespace {

using detail::ScanExecution;
using detail::ScanState;

const std::shared_ptr<ScanState>& require_state(const std::shared_ptr<ScanState>& state) {
  if (state == nullptr) throw std::logic_error("ScanHandle: empty handle");
  return state;
}

/// Mirrors ThreadPool::global()'s sizing so a default service behaves like
/// the pool every detect() call used before the service existed.
int resolve_scan_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("USB_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::clamp(hw, 1, 16);
}

int resolve_dispatchers(const DetectionServiceConfig& config) {
  if (config.round_dispatchers > 0) return config.round_dispatchers;
  return std::max(1, config.max_concurrent_scans);
}

}  // namespace

std::uint64_t ScanHandle::id() const { return require_state(state_)->id; }

ScanStatus ScanHandle::poll() const {
  const auto& state = require_state(state_);
  const std::lock_guard<std::mutex> lock(state->mutex);
  return state->outcome.status;
}

const ScanOutcome& ScanHandle::wait() const {
  const auto& state = require_state(state_);
  std::unique_lock<std::mutex> lock(state->mutex);
  if (state->has_deadline) {
    state->done_cv.wait_until(lock, state->deadline, [&state] { return state->terminal; });
    if (!state->terminal) {
      // Deadline passed with the scan unresolved. Nudge it: a QUEUED scan
      // resolves kTimedOut right now (it would otherwise sit in the
      // submission queue untouched — no dispatcher ever looks at it); an
      // in-flight one resolves at its next stage boundary, which the
      // final wait below observes.
      std::shared_ptr<ScanExecution> execution = state->execution;
      lock.unlock();
      if (execution != nullptr) execution->request_timeout();
      lock.lock();
    }
  }
  state->done_cv.wait(lock, [&state] { return state->terminal; });
  return state->outcome;
}

bool ScanHandle::cancel() const {
  const auto& state = require_state(state_);
  state->cancel.store(true, std::memory_order_relaxed);
  std::shared_ptr<ScanExecution> execution;
  {
    const std::lock_guard<std::mutex> lock(state->mutex);
    if (state->terminal) return false;
    execution = state->execution;
  }
  // Outside state->mutex: request_cancel takes the execution's own lock
  // (and may finish the scan, which re-takes state->mutex).
  if (execution != nullptr) execution->request_cancel();
  return true;
}

DetectionService::DetectionService(DetectionServiceConfig config)
    : config_(config),
      scan_pool_(resolve_scan_threads(config.scan_threads)),
      probe_store_(ProbeStoreOptions{config.eval_batch_size, config.probe_store_max_bytes}),
      scheduler_(RoundScheduler::Config{resolve_dispatchers(config), &scan_pool_}) {}

DetectionService::~DetectionService() {
  std::vector<std::shared_ptr<ScanState>> snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
    snapshot.assign(live_.begin(), live_.end());
  }
  queue_space_.notify_all();  // blocked submitters must observe the shutdown
  // Queued scans resolve to kCancelled immediately; admitted scans hit the
  // flag at their next stage boundary. Cancel OUTSIDE mutex_: request_cancel
  // re-enters the service through retire_scan.
  for (const auto& state : snapshot) {
    state->cancel.store(true, std::memory_order_relaxed);
    std::shared_ptr<ScanExecution> execution;
    {
      const std::lock_guard<std::mutex> lock(state->mutex);
      execution = state->execution;
    }
    if (execution != nullptr) execution->request_cancel();
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return live_.empty(); });
  }
  // Members now destruct; scheduler_ (declared last) goes first, joining
  // the dispatchers while everything they can touch is still alive.
}

ScanHandle DetectionService::submit(ScanRequest request) {
  if (request.model == nullptr) throw std::invalid_argument("ScanRequest: null model");
  if (request.detector == nullptr) throw std::invalid_argument("ScanRequest: null detector");
  if (!request.probe_key.has_value() && request.probe == nullptr) {
    throw std::invalid_argument("ScanRequest: neither probe_key nor probe set");
  }

  // Admission control BEFORE any expensive work: a rejected request costs
  // nothing, and a blocked one reserves its queue slot first so the clone
  // below can never overshoot the cap (pending = queued + reserved).
  const bool bounded = config_.max_queued > 0;
  if (bounded) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutting_down_) throw std::runtime_error("DetectionService: submit after shutdown");
    if (pending_depth_locked() >= config_.max_queued) {
      if (config_.admission_policy == AdmissionPolicy::kReject) {
        throw QueueFull(pending_depth_locked());
      }
      queue_space_.wait(lock, [this] {
        return shutting_down_ || pending_depth_locked() < config_.max_queued;
      });
      if (shutting_down_) throw std::runtime_error("DetectionService: submit after shutdown");
    }
    ++reserved_slots_;
  }
  // Releases the reservation on every early exit; disarmed once the request
  // is actually queued (the queue entry then carries the slot).
  auto release_reservation = [this, bounded]() {
    if (!bounded) return;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --reserved_slots_;
    }
    queue_space_.notify_one();
  };

  std::shared_ptr<ScanState> state;
  std::shared_ptr<ScanExecution> execution;
  bool launch_now = false;
  try {
    state = std::make_shared<ScanState>();
    state->id = next_id_.fetch_add(1);
    // Deep copy now: the caller's model may be mutated or destroyed after
    // submit(), and concurrent requests naming the same model must not race
    // on its per-instance forward caches. The scan still clones this clone
    // per class, so reports match detect() on the original bit for bit.
    state->model = std::make_unique<Network>(clone_network(*request.model));
    state->detector = std::move(request.detector);
    if (request.probe_key.has_value()) {
      state->stored_probe = probe_store_.get_or_create(*request.probe_key);
    } else {
      state->owned_probe = std::make_unique<Dataset>(*request.probe);
    }
    state->options = std::move(request.options);
    const double deadline_seconds = state->options.deadline_seconds > 0
                                        ? state->options.deadline_seconds
                                        : config_.default_deadline_seconds;
    if (deadline_seconds > 0) {
      state->has_deadline = true;
      state->deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(deadline_seconds));
    }
    execution = std::make_shared<ScanExecution>(*this, state);
    state->execution = execution;  // pre-publication: no lock needed yet

    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) throw std::runtime_error("DetectionService: submit after shutdown");
    live_.push_back(state);
    if (admitted_ < std::max(1, config_.max_concurrent_scans)) {
      ++admitted_;
      launch_now = true;
    } else {
      queue_.push_back(execution);
    }
    if (bounded) --reserved_slots_;  // the queue entry (or admission) holds the slot
  } catch (...) {
    release_reservation();
    throw;
  }
  submitted_.fetch_add(1);
  if (launch_now) execution->launch();
  return ScanHandle(std::move(state));
}

void DetectionService::drain() {
  std::vector<std::shared_ptr<ScanState>> snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snapshot.assign(live_.begin(), live_.end());
  }
  for (const auto& state : snapshot) {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done_cv.wait(lock, [&state] { return state->terminal; });
  }
}

void DetectionService::retire_scan(const std::shared_ptr<detail::ScanState>& state,
                                   const detail::ScanExecution* exec,
                                   std::vector<std::shared_ptr<detail::ScanExecution>>& launches) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    live_.erase(std::find(live_.begin(), live_.end(), state));
    const auto queued = std::find_if(queue_.begin(), queue_.end(),
                                     [exec](const auto& entry) { return entry.get() == exec; });
    if (queued != queue_.end()) {
      // Cancelled before admission: remove it; no slot opened.
      queue_.erase(queued);
    } else {
      // Admitted (or collected for launch concurrently with a queued
      // cancel — the increment already happened either way): free the slot
      // and collect successors. The caller launches them outside all locks.
      --admitted_;
      const std::int64_t cap = std::max(1, config_.max_concurrent_scans);
      while (!shutting_down_ && admitted_ < cap && !queue_.empty()) {
        launches.push_back(queue_.front());
        queue_.pop_front();
        ++admitted_;
      }
    }
    if (live_.empty()) idle_.notify_all();
  }
  queue_space_.notify_all();  // pending depth shrank (or shutdown progressed)
}

}  // namespace usb
