#include "service/detection_service.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "nn/checkpoint.h"

namespace usb {

std::string to_string(ScanStatus status) {
  switch (status) {
    case ScanStatus::kQueued: return "queued";
    case ScanStatus::kRunning: return "running";
    case ScanStatus::kDone: return "done";
    case ScanStatus::kCancelled: return "cancelled";
    case ScanStatus::kFailed: return "failed";
  }
  return "unknown";
}

namespace detail {

/// Shared between the submitting thread, one executor, and any number of
/// ScanHandle copies. The request payload (model clone, detector, probe)
/// is released the moment the scan reaches a terminal status; the outcome
/// stays alive for as long as any handle does.
struct ScanState {
  std::uint64_t id = 0;

  // Request payload. Touched only by submit() (filling) and the one
  // executor that runs the scan (consuming + releasing) — never by handles.
  std::unique_ptr<Network> model;
  DetectorPtr detector;
  std::shared_ptr<const ProbeData> stored_probe;  // probe_key requests
  std::unique_ptr<Dataset> owned_probe;           // explicit-probe requests
  ScanOptions options;

  std::atomic<bool> cancel{false};
  mutable std::mutex mutex;
  mutable std::condition_variable done_cv;
  ScanOutcome outcome;  // outcome.status doubles as the live status
  bool terminal = false;

  void finish(ScanOutcome final_outcome) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      outcome = std::move(final_outcome);
      terminal = true;
    }
    done_cv.notify_all();
    // Drop the payload: a long-lived handle must not pin a model clone or
    // a probe materialization.
    model.reset();
    detector.reset();
    stored_probe.reset();
    owned_probe.reset();
  }
};

}  // namespace detail

namespace {

using detail::ScanState;

const std::shared_ptr<ScanState>& require_state(const std::shared_ptr<ScanState>& state) {
  if (state == nullptr) throw std::logic_error("ScanHandle: empty handle");
  return state;
}

/// Mirrors ThreadPool::global()'s sizing so a default service behaves like
/// the pool every detect() call used before the service existed.
int resolve_scan_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("USB_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::clamp(hw, 1, 16);
}

}  // namespace

std::uint64_t ScanHandle::id() const { return require_state(state_)->id; }

ScanStatus ScanHandle::poll() const {
  const auto& state = require_state(state_);
  const std::lock_guard<std::mutex> lock(state->mutex);
  return state->outcome.status;
}

const ScanOutcome& ScanHandle::wait() const {
  const auto& state = require_state(state_);
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done_cv.wait(lock, [&state] { return state->terminal; });
  return state->outcome;
}

bool ScanHandle::cancel() const {
  const auto& state = require_state(state_);
  state->cancel.store(true, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(state->mutex);
  return !state->terminal;
}

DetectionService::DetectionService(DetectionServiceConfig config)
    : config_(config),
      scan_pool_(resolve_scan_threads(config.scan_threads)),
      probe_store_(ProbeStoreOptions{config.eval_batch_size, config.probe_store_max_bytes}) {
  const int executors = std::max(1, config_.max_concurrent_scans);
  executors_.reserve(static_cast<std::size_t>(executors));
  for (int i = 0; i < executors; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

DetectionService::~DetectionService() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
    // Queued scans resolve to kCancelled the moment an executor pops them;
    // running scans hit the flag at their next class/round boundary.
    for (const auto& state : live_) state->cancel.store(true, std::memory_order_relaxed);
  }
  work_available_.notify_all();
  queue_space_.notify_all();  // blocked submitters must observe the shutdown
  for (std::thread& executor : executors_) executor.join();
}

ScanHandle DetectionService::submit(ScanRequest request) {
  if (request.model == nullptr) throw std::invalid_argument("ScanRequest: null model");
  if (request.detector == nullptr) throw std::invalid_argument("ScanRequest: null detector");
  if (!request.probe_key.has_value() && request.probe == nullptr) {
    throw std::invalid_argument("ScanRequest: neither probe_key nor probe set");
  }

  // Admission control BEFORE any expensive work: a rejected request costs
  // nothing, and a blocked one reserves its queue slot first so the clone
  // below can never overshoot the cap (pending = queued + reserved).
  const bool bounded = config_.max_queued > 0;
  if (bounded) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutting_down_) throw std::runtime_error("DetectionService: submit after shutdown");
    if (pending_depth_locked() >= config_.max_queued) {
      if (config_.admission_policy == AdmissionPolicy::kReject) {
        throw QueueFull(pending_depth_locked());
      }
      queue_space_.wait(lock, [this] {
        return shutting_down_ || pending_depth_locked() < config_.max_queued;
      });
      if (shutting_down_) throw std::runtime_error("DetectionService: submit after shutdown");
    }
    ++reserved_slots_;
  }
  // Releases the reservation on every early exit; disarmed once the request
  // is actually queued (the queue entry then carries the slot).
  auto release_reservation = [this, bounded]() {
    if (!bounded) return;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --reserved_slots_;
    }
    queue_space_.notify_one();
  };

  std::shared_ptr<ScanState> state;
  try {
    state = std::make_shared<ScanState>();
    state->id = next_id_.fetch_add(1);
    // Deep copy now: the caller's model may be mutated or destroyed after
    // submit(), and concurrent requests naming the same model must not race
    // on its per-instance forward caches. The scheduler still clones this
    // clone per class, so reports match detect() on the original bit for bit.
    state->model = std::make_unique<Network>(clone_network(*request.model));
    state->detector = std::move(request.detector);
    if (request.probe_key.has_value()) {
      state->stored_probe = probe_store_.get_or_create(*request.probe_key);
    } else {
      state->owned_probe = std::make_unique<Dataset>(*request.probe);
    }
    state->options = std::move(request.options);

    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) throw std::runtime_error("DetectionService: submit after shutdown");
    queue_.push_back(state);
    live_.push_back(state);
    if (bounded) --reserved_slots_;  // the queue entry now holds the slot
  } catch (...) {
    release_reservation();
    throw;
  }
  submitted_.fetch_add(1);
  work_available_.notify_one();
  return ScanHandle(std::move(state));
}

void DetectionService::drain() {
  std::vector<std::shared_ptr<ScanState>> snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snapshot.assign(live_.begin(), live_.end());
  }
  for (const auto& state : snapshot) {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done_cv.wait(lock, [&state] { return state->terminal; });
  }
}

void DetectionService::executor_loop() {
  for (;;) {
    std::shared_ptr<ScanState> state;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and fully drained
      state = queue_.front();
      queue_.pop_front();
    }
    queue_space_.notify_one();  // a pending slot opened for blocked submitters
    execute(state);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      live_.erase(std::find(live_.begin(), live_.end(), state));
    }
  }
}

void DetectionService::execute(const std::shared_ptr<ScanState>& state) {
  if (state->cancel.load(std::memory_order_relaxed)) {
    cancelled_.fetch_add(1);
    state->finish(ScanOutcome{ScanStatus::kCancelled, {}, {}});
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(state->mutex);
    state->outcome.status = ScanStatus::kRunning;
  }

  try {
    // The detector's own plan, with the service's session state wired in.
    // None of the overrides has a numeric effect (pool size and cache
    // adoption are schedule-only; cancel/progress carry no data into the
    // scan), so a default-options run matches detect() byte for byte.
    ScanPlan plan = state->detector->plan();
    plan.options.pool = &scan_pool_;
    plan.options.cancel = &state->cancel;
    if (state->options.progress) plan.options.progress = state->options.progress;
    if (state->options.early_exit.has_value()) plan.options.early_exit = *state->options.early_exit;
    const Dataset& probe =
        state->stored_probe != nullptr ? state->stored_probe->probe : *state->owned_probe;
    if (plan.options.external_probe_cache == nullptr && state->stored_probe != nullptr) {
      plan.options.external_probe_cache = &state->stored_probe->cache;
    }

    DetectionReport report = run_scan_plan(plan, *state->model, probe);
    completed_.fetch_add(1);
    state->finish(ScanOutcome{ScanStatus::kDone, std::move(report), {}});
  } catch (const ScanCancelled&) {
    cancelled_.fetch_add(1);
    state->finish(ScanOutcome{ScanStatus::kCancelled, {}, {}});
  } catch (const std::exception& error) {
    failed_.fetch_add(1);
    state->finish(ScanOutcome{ScanStatus::kFailed, {}, error.what()});
  }
}

}  // namespace usb
