#include "service/wire.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <limits>
#include <mutex>
#include <utility>

#include "utils/serialize.h"

namespace usb::wire {
namespace {

constexpr std::int64_t kMaxTensorRank = 8;
constexpr std::int64_t kMaxTensorNumel = 1LL << 40;

void require(bool condition, const char* what) {
  if (!condition) throw WireError(what);
}

void write_header(BinaryWriter& writer, std::uint32_t record) {
  writer.write_u32(kMagic);
  writer.write_u32(kVersion);
  writer.write_u32(record);
}

void read_header(BinaryReader& reader, std::uint32_t record) {
  const std::uint32_t magic = reader.read_u32();
  require(magic == kMagic, "bad magic");
  const std::uint32_t version = reader.read_u32();
  if (version != kVersion) {
    throw WireError("unsupported format version " + std::to_string(version) + " (want " +
                    std::to_string(kVersion) + ")");
  }
  require(reader.read_u32() == record, "wrong record type");
}

void write_bool(BinaryWriter& writer, bool value) {
  writer.write_u32(value ? 1U : 0U);
}

bool read_bool(BinaryReader& reader) {
  const std::uint32_t value = reader.read_u32();
  require(value <= 1U, "bool tag out of range");
  return value == 1U;
}

void write_dataset_spec(BinaryWriter& writer, const DatasetSpec& spec) {
  writer.write_string(spec.name);
  writer.write_i64(spec.channels);
  writer.write_i64(spec.image_size);
  writer.write_i64(spec.num_classes);
}

DatasetSpec read_dataset_spec(BinaryReader& reader) {
  DatasetSpec spec;
  spec.name = reader.read_string();
  spec.channels = reader.read_i64();
  spec.image_size = reader.read_i64();
  spec.num_classes = reader.read_i64();
  require(spec.channels > 0 && spec.channels <= 16, "dataset channels out of range");
  require(spec.image_size > 0 && spec.image_size <= 4096, "dataset image_size out of range");
  require(spec.num_classes > 0 && spec.num_classes <= 65536, "dataset num_classes out of range");
  return spec;
}

void write_model_ref(BinaryWriter& writer, const ModelRef& ref) {
  if (ref.zoo.has_value()) {
    writer.write_u32(1U);
    const ModelCaseSpec& spec = *ref.zoo;
    write_dataset_spec(writer, spec.dataset);
    writer.write_string(to_string(spec.arch));
    writer.write_u32(static_cast<std::uint32_t>(spec.attack.kind));
    writer.write_i64(spec.attack.trigger_size);
    writer.write_i64(spec.attack.target_class);
    writer.write_f64(spec.attack.poison_rate);
    writer.write_i64(static_cast<std::int64_t>(spec.attack.seed));
    writer.write_i64(spec.model_index);
    writer.write_i64(spec.scale.models_per_case);
    writer.write_i64(spec.scale.epochs);
    writer.write_i64(spec.scale.train_size);
    writer.write_i64(spec.scale.test_size);
    write_bool(writer, spec.scale.fast);
    writer.write_string(spec.scale.model_cache_dir);
  } else {
    writer.write_u32(0U);
    writer.write_string(ref.checkpoint_path);
  }
}

ModelRef read_model_ref(BinaryReader& reader) {
  const std::uint32_t form = reader.read_u32();
  require(form <= 1U, "model_ref form tag out of range");
  if (form == 0U) {
    ModelRef ref = ModelRef::from_checkpoint(reader.read_string());
    require(!ref.checkpoint_path.empty(), "empty checkpoint path");
    return ref;
  }
  ModelCaseSpec spec;
  spec.dataset = read_dataset_spec(reader);
  spec.arch = architecture_from_string(reader.read_string());
  const std::uint32_t kind = reader.read_u32();
  require(kind <= static_cast<std::uint32_t>(AttackKind::kIad), "attack kind out of range");
  spec.attack.kind = static_cast<AttackKind>(kind);
  spec.attack.trigger_size = reader.read_i64();
  spec.attack.target_class = reader.read_i64();
  spec.attack.poison_rate = reader.read_f64();
  spec.attack.seed = static_cast<std::uint64_t>(reader.read_i64());
  spec.model_index = reader.read_i64();
  spec.scale.models_per_case = reader.read_i64();
  spec.scale.epochs = reader.read_i64();
  spec.scale.train_size = reader.read_i64();
  spec.scale.test_size = reader.read_i64();
  spec.scale.fast = read_bool(reader);
  spec.scale.model_cache_dir = reader.read_string();
  return ModelRef::from_zoo(std::move(spec));
}

void write_tensor(BinaryWriter& writer, const Tensor& tensor) {
  writer.write_i64s(tensor.shape().dims);
  writer.write_floats(tensor.data());
}

Tensor read_tensor(BinaryReader& reader) {
  std::vector<std::int64_t> dims = reader.read_i64s();
  require(static_cast<std::int64_t>(dims.size()) <= kMaxTensorRank, "tensor rank out of range");
  std::int64_t numel = 1;
  for (const std::int64_t dim : dims) {
    require(dim >= 0, "negative tensor dimension");
    require(dim == 0 || numel <= kMaxTensorNumel / std::max<std::int64_t>(dim, 1),
            "tensor numel out of range");
    numel *= dim;
  }
  std::vector<float> values = reader.read_floats();
  require(static_cast<std::int64_t>(values.size()) == numel,
          "tensor payload does not match its shape");
  if (dims.empty() && values.empty()) return Tensor();
  return Tensor(Shape(std::move(dims)), std::move(values));
}

void write_options(BinaryWriter& writer, const ScanOptions& options) {
  // `progress` is deliberately absent: callbacks cannot cross the wire.
  writer.write_i64(options.priority);
  writer.write_f64(options.fair_weight);
  writer.write_f64(options.deadline_seconds);
  writer.write_i64(options.max_retries);
  writer.write_f64(options.retry_backoff_seconds);
  write_bool(writer, options.unsheddable);
  write_bool(writer, options.early_exit.has_value());
  if (options.early_exit.has_value()) {
    const EarlyExitOptions& early = *options.early_exit;
    write_bool(writer, early.enabled);
    writer.write_i64(early.round_steps);
    writer.write_i64(early.min_rounds);
    writer.write_f64(early.margin);
    write_bool(writer, early.async);
  }
}

ScanOptions read_options(BinaryReader& reader) {
  ScanOptions options;
  const std::int64_t priority = reader.read_i64();
  require(priority >= std::numeric_limits<int>::min() &&
              priority <= std::numeric_limits<int>::max(),
          "priority out of range");
  options.priority = static_cast<int>(priority);
  options.fair_weight = reader.read_f64();
  options.deadline_seconds = reader.read_f64();
  const std::int64_t max_retries = reader.read_i64();
  require(max_retries >= std::numeric_limits<int>::min() &&
              max_retries <= std::numeric_limits<int>::max(),
          "max_retries out of range");
  options.max_retries = static_cast<int>(max_retries);
  options.retry_backoff_seconds = reader.read_f64();
  options.unsheddable = read_bool(reader);
  if (read_bool(reader)) {
    EarlyExitOptions early;
    early.enabled = read_bool(reader);
    early.round_steps = reader.read_i64();
    early.min_rounds = reader.read_i64();
    early.margin = reader.read_f64();
    early.async = read_bool(reader);
    options.early_exit = early;
  }
  return options;
}

void write_report(BinaryWriter& writer, const DetectionReport& report) {
  writer.write_string(report.method);
  const std::int64_t num_classes = static_cast<std::int64_t>(report.per_class.size());
  writer.write_i64(num_classes);
  for (const TriggerEstimate& estimate : report.per_class) {
    writer.write_i64(estimate.target_class);
    write_tensor(writer, estimate.pattern);
    write_tensor(writer, estimate.mask);
    writer.write_f64(estimate.mask_l1);
    writer.write_f64(estimate.final_loss);
    writer.write_f64(estimate.fooling_rate);
  }
  std::vector<std::int64_t> states;
  states.reserve(report.per_class_state.size());
  for (const ClassScanState state : report.per_class_state) {
    states.push_back(static_cast<std::int64_t>(state));
  }
  writer.write_i64s(states);
  write_bool(writer, report.verdict.backdoored);
  writer.write_i64s(report.verdict.flagged_classes);
  writer.write_f64s(report.verdict.norms);
  writer.write_f64s(report.verdict.anomaly);
  writer.write_f64s(report.per_class_seconds);
  writer.write_f64(report.wall_seconds);
}

DetectionReport read_report(BinaryReader& reader) {
  DetectionReport report;
  report.method = reader.read_string();
  const std::int64_t num_classes = reader.read_i64();
  // Every per-class entry encodes >= 8 bytes, so the count is bounded by
  // the bytes actually present — a corrupt huge count throws here instead
  // of driving a giant resize.
  require(num_classes >= 0 &&
              static_cast<std::uint64_t>(num_classes) <= reader.remaining() / 8,
          "per-class count exceeds remaining input");
  report.per_class.resize(static_cast<std::size_t>(num_classes));
  for (TriggerEstimate& estimate : report.per_class) {
    estimate.target_class = reader.read_i64();
    estimate.pattern = read_tensor(reader);
    estimate.mask = read_tensor(reader);
    estimate.mask_l1 = reader.read_f64();
    estimate.final_loss = reader.read_f64();
    estimate.fooling_rate = reader.read_f64();
  }
  const std::vector<std::int64_t> states = reader.read_i64s();
  report.per_class_state.reserve(states.size());
  for (const std::int64_t state : states) {
    require(state >= 0 &&
                state <= static_cast<std::int64_t>(ClassScanState::kNumericallyUnstable),
            "per-class state tag out of range");
    report.per_class_state.push_back(static_cast<ClassScanState>(state));
  }
  report.verdict.backdoored = read_bool(reader);
  report.verdict.flagged_classes = reader.read_i64s();
  report.verdict.norms = reader.read_f64s();
  report.verdict.anomaly = reader.read_f64s();
  report.per_class_seconds = reader.read_f64s();
  report.wall_seconds = reader.read_f64();
  return report;
}

/// Wraps serializer-level throws (truncation, bad length prefixes) into
/// WireError; WireError itself passes through untouched.
template <typename Fn>
auto decode_guard(Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const WireError&) {
    throw;
  } catch (const std::exception& error) {
    throw WireError(error.what());
  }
}

}  // namespace

std::vector<std::uint8_t> encode_request(const WireScanRequest& request) {
  BinaryWriter writer;
  write_header(writer, kRequestRecord);
  writer.write_i64(static_cast<std::int64_t>(request.request_id));
  write_model_ref(writer, request.model_ref);
  write_dataset_spec(writer, request.probe_key.spec);
  writer.write_i64(request.probe_key.probe_size);
  writer.write_i64(static_cast<std::int64_t>(request.probe_key.seed));
  writer.write_string(request.method);
  write_options(writer, request.options);
  return writer.buffer();
}

WireScanRequest decode_request(std::span<const std::uint8_t> bytes) {
  return decode_guard([&] {
    BinaryReader reader(std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
    read_header(reader, kRequestRecord);
    WireScanRequest request;
    request.request_id = static_cast<std::uint64_t>(reader.read_i64());
    request.model_ref = read_model_ref(reader);
    request.probe_key.spec = read_dataset_spec(reader);
    request.probe_key.probe_size = reader.read_i64();
    require(request.probe_key.probe_size > 0, "probe_size out of range");
    request.probe_key.seed = static_cast<std::uint64_t>(reader.read_i64());
    request.method = reader.read_string();
    request.options = read_options(reader);
    require(reader.exhausted(), "trailing bytes after request");
    return request;
  });
}

std::vector<std::uint8_t> encode_result(const WireScanResult& result) {
  BinaryWriter writer;
  write_header(writer, kResultRecord);
  writer.write_i64(static_cast<std::int64_t>(result.request_id));
  writer.write_u32(static_cast<std::uint32_t>(result.status));
  writer.write_string(result.error);
  writer.write_i64(result.retries);
  write_report(writer, result.report);
  return writer.buffer();
}

WireScanResult decode_result(std::span<const std::uint8_t> bytes) {
  return decode_guard([&] {
    BinaryReader reader(std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
    read_header(reader, kResultRecord);
    WireScanResult result;
    result.request_id = static_cast<std::uint64_t>(reader.read_i64());
    const std::uint32_t status = reader.read_u32();
    require(status <= static_cast<std::uint32_t>(ScanStatus::kShed), "status tag out of range");
    result.status = static_cast<ScanStatus>(status);
    result.error = reader.read_string();
    result.retries = reader.read_i64();
    result.report = read_report(reader);
    require(reader.exhausted(), "trailing bytes after result");
    return result;
  });
}

std::vector<std::uint8_t> encode_ping(std::uint64_t nonce) {
  BinaryWriter writer;
  write_header(writer, kPingRecord);
  writer.write_i64(static_cast<std::int64_t>(nonce));
  return writer.buffer();
}

std::vector<std::uint8_t> encode_pong(std::uint64_t nonce) {
  BinaryWriter writer;
  write_header(writer, kPongRecord);
  writer.write_i64(static_cast<std::int64_t>(nonce));
  return writer.buffer();
}

namespace {

std::uint64_t decode_heartbeat(std::span<const std::uint8_t> bytes, std::uint32_t record) {
  return decode_guard([&] {
    BinaryReader reader(std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
    read_header(reader, record);
    const std::uint64_t nonce = static_cast<std::uint64_t>(reader.read_i64());
    require(reader.exhausted(), "trailing bytes after heartbeat");
    return nonce;
  });
}

}  // namespace

std::uint64_t decode_ping(std::span<const std::uint8_t> bytes) {
  return decode_heartbeat(bytes, kPingRecord);
}

std::uint64_t decode_pong(std::span<const std::uint8_t> bytes) {
  return decode_heartbeat(bytes, kPongRecord);
}

std::uint32_t peek_record(std::span<const std::uint8_t> bytes) {
  return decode_guard([&] {
    BinaryReader reader(
        std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + std::min<std::size_t>(bytes.size(), 12)));
    const std::uint32_t magic = reader.read_u32();
    require(magic == kMagic, "bad magic");
    const std::uint32_t version = reader.read_u32();
    if (version != kVersion) {
      throw WireError("unsupported format version " + std::to_string(version) + " (want " +
                      std::to_string(kVersion) + ")");
    }
    const std::uint32_t record = reader.read_u32();
    require(record >= kRequestRecord && record <= kPongRecord, "unknown record tag");
    return record;
  });
}

void ignore_sigpipe() {
  // Once per process is enough; std::call_once keeps concurrent spawners
  // (the fleet respawn path races submit threads) from re-installing.
  static std::once_flag installed;
  std::call_once(installed, [] { std::signal(SIGPIPE, SIG_IGN); });
}

namespace {

/// fwrite with EINTR retry. Returns false on any other error (the stream's
/// error flag and errno say why).
bool write_fully(std::FILE* out, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t written = 0;
  while (written < size) {
    const std::size_t n = std::fwrite(bytes + written, 1, size - written, out);
    written += n;
    if (written == size) break;
    if (std::ferror(out) != 0 && errno == EINTR) {
      std::clearerr(out);
      continue;
    }
    if (n == 0) return false;
  }
  return true;
}

enum class ReadStatus { kOk, kEof, kInterrupted, kError };

/// fread exactly `size` bytes with EINTR retry. `got` reports the bytes
/// actually read (to distinguish clean EOF from a truncated read).
/// `interrupt` is checked between attempts: a signal handler setting it
/// unblocks a reader parked on an idle pipe.
ReadStatus read_fully(std::FILE* in, void* data, std::size_t size, std::size_t& got,
                      const std::atomic<bool>* interrupt) {
  auto* bytes = static_cast<std::uint8_t*>(data);
  got = 0;
  while (got < size) {
    if (interrupt != nullptr && interrupt->load(std::memory_order_relaxed)) {
      return ReadStatus::kInterrupted;
    }
    const std::size_t n = std::fread(bytes + got, 1, size - got, in);
    got += n;
    if (got == size) break;
    if (std::ferror(in) != 0 && errno == EINTR) {
      std::clearerr(in);
      continue;
    }
    if (std::feof(in) != 0) return ReadStatus::kEof;
    if (std::ferror(in) != 0) return ReadStatus::kError;
  }
  return ReadStatus::kOk;
}

}  // namespace

void write_frame(std::FILE* out, std::span<const std::uint8_t> payload) {
  if (payload.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw WireError("frame too large");
  }
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  errno = 0;
  if (!write_fully(out, &length, sizeof(length)) ||
      (length > 0 && !write_fully(out, payload.data(), payload.size()))) {
    throw WireError(errno == EPIPE ? "peer closed the stream (EPIPE)"
                                   : "frame write failed: " + std::string(std::strerror(errno)));
  }
  errno = 0;
  // fflush can also take the EPIPE: the peer may close between the buffered
  // write above and the flush pushing bytes into the pipe.
  while (std::fflush(out) != 0) {
    if (errno == EINTR) {
      std::clearerr(out);
      continue;
    }
    throw WireError(errno == EPIPE ? "peer closed the stream (EPIPE)"
                                   : "frame flush failed: " + std::string(std::strerror(errno)));
  }
}

bool read_frame(std::FILE* in, std::vector<std::uint8_t>& payload, std::int64_t max_frame_bytes,
                const std::atomic<bool>* interrupt) {
  std::uint32_t length = 0;
  std::size_t got = 0;
  switch (read_fully(in, &length, sizeof(length), got, interrupt)) {
    case ReadStatus::kOk:
      break;
    case ReadStatus::kInterrupted:
      return false;  // drain requested: treated as a clean end-of-stream
    case ReadStatus::kEof:
      if (got == 0) return false;  // clean end-of-stream
      throw WireError("truncated frame header");
    case ReadStatus::kError:
      throw WireError("frame header read failed: " + std::string(std::strerror(errno)));
  }
  if (static_cast<std::int64_t>(length) > max_frame_bytes) {
    throw WireError("frame length " + std::to_string(length) + " exceeds limit");
  }
  payload.resize(length);
  if (length > 0) {
    switch (read_fully(in, payload.data(), payload.size(), got, interrupt)) {
      case ReadStatus::kOk:
        break;
      case ReadStatus::kInterrupted:
        return false;
      case ReadStatus::kEof:
        throw WireError("truncated frame payload");
      case ReadStatus::kError:
        throw WireError("frame payload read failed: " + std::string(std::strerror(errno)));
    }
  }
  return true;
}

}  // namespace usb::wire
