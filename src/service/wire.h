// Versioned binary wire format for out-of-process scan submission.
//
// The seam for sharding scans across worker processes: a client encodes a
// WireScanRequest (model by REFERENCE — zoo spec or checkpoint path — plus
// probe coordinates and scan options), ships it over any byte stream, and a
// server running a DetectionService decodes it, submits, and ships back a
// WireScanResult (terminal status + the full DetectionReport, per-class
// estimates and tensors included). See examples/scan_server.cpp +
// examples/scan_client.cpp for the stdin/stdout pipe pair.
//
// Format: magic "USBW", format version, then length-prefixed typed fields
// (utils/serialize.h primitives, native little-endian). Doubles travel as
// raw IEEE bits, so statistics — including the NaN mask_l1 of a quarantined
// class — round-trip EXACTLY: a report decoded from the wire is
// byte-identical to the one the server produced, and a round-tripped
// request resubmitted locally produces the identical report.
//
// Versioning policy: the version is bumped on ANY layout change; decoders
// accept exactly their own version (no silent forward/backward compat — a
// fleet rolls its workers together). Strictness: decode validates magic,
// version, every length prefix against the remaining bytes (oversized and
// negative lengths throw before any allocation), every enum tag, tensor
// shape/payload consistency, and that no trailing bytes remain. Corrupt
// input of any kind throws WireError — never UB (fuzz-style truncation
// coverage in tests/test_wire.cpp runs under the ASan/UBSan CI jobs).
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "defenses/detector.h"
#include "service/detection_service.h"
#include "service/model_store.h"

namespace usb::wire {

inline constexpr std::uint32_t kMagic = 0x57425355;  // "USBW" little-endian
inline constexpr std::uint32_t kVersion = 1;

/// Any decode-side validation failure (truncation, bad magic/version/tag,
/// oversized length, inconsistent tensor, trailing bytes).
struct WireError : std::runtime_error {
  explicit WireError(const std::string& what) : std::runtime_error("wire: " + what) {}
};

/// The out-of-process form of ScanRequest. Models travel by reference only
/// (a live Network* cannot cross a process boundary) and probes by key; the
/// non-serializable ScanOptions members (progress callback, the handle-side
/// knobs) stay local to the server.
struct WireScanRequest {
  ModelRef model_ref;
  ProbeKey probe_key;
  /// Detector selector the server maps to a configured detector ("USB",
  /// "NC", "TABOR" in the examples). The wire ships the NAME, not the
  /// config: a fleet's detector configuration is the server's, versioned
  /// with its binary, so every worker scans identically.
  std::string method;
  /// Serialized subset of ScanOptions: everything except `progress` (a
  /// callback cannot cross the wire).
  ScanOptions options;
};

/// The out-of-process form of ScanOutcome: terminal status, error text,
/// retry count, and the full report.
struct WireScanResult {
  ScanStatus status = ScanStatus::kQueued;
  std::string error;
  std::int64_t retries = 0;
  DetectionReport report;
};

[[nodiscard]] std::vector<std::uint8_t> encode_request(const WireScanRequest& request);
[[nodiscard]] WireScanRequest decode_request(std::span<const std::uint8_t> bytes);

[[nodiscard]] std::vector<std::uint8_t> encode_result(const WireScanResult& result);
[[nodiscard]] WireScanResult decode_result(std::span<const std::uint8_t> bytes);

/// Stream framing for pipes/sockets: a u32 length prefix, then the payload.
/// `max_frame_bytes` bounds what read_frame will accept (a corrupt or
/// hostile length must not drive an unbounded allocation).
inline constexpr std::int64_t kDefaultMaxFrameBytes = 256LL * 1024 * 1024;

/// Writes one frame; throws std::runtime_error on I/O failure.
void write_frame(std::FILE* out, std::span<const std::uint8_t> payload);

/// Reads one frame into `payload`. Returns false on clean end-of-stream
/// (EOF before any header byte); throws WireError on a truncated header or
/// payload, or a length past `max_frame_bytes`.
[[nodiscard]] bool read_frame(std::FILE* in, std::vector<std::uint8_t>& payload,
                              std::int64_t max_frame_bytes = kDefaultMaxFrameBytes);

}  // namespace usb::wire
