// Versioned binary wire format for out-of-process scan submission.
//
// The seam for sharding scans across worker processes: a client encodes a
// WireScanRequest (model by REFERENCE — zoo spec or checkpoint path — plus
// probe coordinates and scan options), ships it over any byte stream, and a
// server running a DetectionService decodes it, submits, and ships back a
// WireScanResult (terminal status + the full DetectionReport, per-class
// estimates and tensors included). See examples/scan_server.cpp +
// examples/scan_client.cpp for the stdin/stdout pipe pair.
//
// Format: magic "USBW", format version, then length-prefixed typed fields
// (utils/serialize.h primitives, native little-endian). Doubles travel as
// raw IEEE bits, so statistics — including the NaN mask_l1 of a quarantined
// class — round-trip EXACTLY: a report decoded from the wire is
// byte-identical to the one the server produced, and a round-tripped
// request resubmitted locally produces the identical report.
//
// Versioning policy: the version is bumped on ANY layout change; decoders
// accept exactly their own version (no silent forward/backward compat — a
// fleet rolls its workers together). Strictness: decode validates magic,
// version, every length prefix against the remaining bytes (oversized and
// negative lengths throw before any allocation), every enum tag, tensor
// shape/payload consistency, and that no trailing bytes remain. Corrupt
// input of any kind throws WireError — never UB (fuzz-style truncation
// coverage in tests/test_wire.cpp runs under the ASan/UBSan CI jobs).
//
// Version history:
//   1  PR 9: initial request/result records.
//   2  PR 10: every request/result carries a caller-assigned request id
//      (results can arrive out of submission order, which process-sharded
//      fleets need for re-dispatch), and ping/pong heartbeat records let a
//      supervisor distinguish a wedged worker from a slow scan.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "defenses/detector.h"
#include "service/detection_service.h"
#include "service/model_store.h"

namespace usb::wire {

inline constexpr std::uint32_t kMagic = 0x57425355;  // "USBW" little-endian
inline constexpr std::uint32_t kVersion = 2;

/// Record tags, exposed so stream demultiplexers (the fleet supervisor, the
/// worker loop) can peek_record() a frame and dispatch without trial
/// decoding. A result frame fed to decode_request (or vice versa) is still
/// a clean error, never a misparse.
inline constexpr std::uint32_t kRequestRecord = 1;
inline constexpr std::uint32_t kResultRecord = 2;
inline constexpr std::uint32_t kPingRecord = 3;
inline constexpr std::uint32_t kPongRecord = 4;

/// Any decode-side validation failure (truncation, bad magic/version/tag,
/// oversized length, inconsistent tensor, trailing bytes).
struct WireError : std::runtime_error {
  explicit WireError(const std::string& what) : std::runtime_error("wire: " + what) {}
};

/// The out-of-process form of ScanRequest. Models travel by reference only
/// (a live Network* cannot cross a process boundary) and probes by key; the
/// non-serializable ScanOptions members (progress callback, the handle-side
/// knobs) stay local to the server.
struct WireScanRequest {
  /// Caller-assigned correlation id, echoed verbatim in the matching
  /// WireScanResult. Workers answer requests as their scans complete — NOT
  /// in submission order — so the id is what lets a router match results
  /// to futures and re-dispatch a dead worker's in-flight requests. 0 is
  /// reserved for "unattributable" (a worker answering a frame it could
  /// not decode far enough to learn the id).
  std::uint64_t request_id = 0;
  ModelRef model_ref;
  ProbeKey probe_key;
  /// Detector selector the server maps to a configured detector ("USB",
  /// "NC", "TABOR" in the examples). The wire ships the NAME, not the
  /// config: a fleet's detector configuration is the server's, versioned
  /// with its binary, so every worker scans identically.
  std::string method;
  /// Serialized subset of ScanOptions: everything except `progress` (a
  /// callback cannot cross the wire).
  ScanOptions options;
};

/// The out-of-process form of ScanOutcome: terminal status, error text,
/// retry count, and the full report.
struct WireScanResult {
  /// Echo of WireScanRequest::request_id (0 = unattributable).
  std::uint64_t request_id = 0;
  ScanStatus status = ScanStatus::kQueued;
  std::string error;
  std::int64_t retries = 0;
  DetectionReport report;
};

[[nodiscard]] std::vector<std::uint8_t> encode_request(const WireScanRequest& request);
[[nodiscard]] WireScanRequest decode_request(std::span<const std::uint8_t> bytes);

[[nodiscard]] std::vector<std::uint8_t> encode_result(const WireScanResult& result);
[[nodiscard]] WireScanResult decode_result(std::span<const std::uint8_t> bytes);

/// Heartbeat records. A supervisor pings each worker on a fixed cadence;
/// the worker's frame-reading thread answers with a pong echoing the nonce
/// immediately — never behind a running scan — so heartbeat SILENCE means
/// the worker process is dead or wedged, not merely busy (slow scans are
/// the DetectionService watchdog's job). decode_* throw WireError on
/// anything but a well-formed frame of the expected record type.
[[nodiscard]] std::vector<std::uint8_t> encode_ping(std::uint64_t nonce);
[[nodiscard]] std::uint64_t decode_ping(std::span<const std::uint8_t> bytes);
[[nodiscard]] std::vector<std::uint8_t> encode_pong(std::uint64_t nonce);
[[nodiscard]] std::uint64_t decode_pong(std::span<const std::uint8_t> bytes);

/// Validates the frame header (magic + exact version) and returns its
/// record tag (kRequestRecord/kResultRecord/kPingRecord/kPongRecord)
/// without decoding the body — the dispatch step of a stream demultiplexer.
/// Throws WireError on truncation, bad magic, version mismatch, or an
/// unknown tag.
[[nodiscard]] std::uint32_t peek_record(std::span<const std::uint8_t> bytes);

/// Stream framing for pipes/sockets: a u32 length prefix, then the payload.
/// `max_frame_bytes` bounds what read_frame will accept (a corrupt or
/// hostile length must not drive an unbounded allocation).
///
/// Hardened for real pipes between mutually supervising processes:
///  - reads and writes retry EINTR (a signal must not masquerade as a
///    truncated frame);
///  - a peer that closed its end surfaces as WireError (write side: EPIPE —
///    callers must have SIGPIPE ignored, see ignore_sigpipe(); read side:
///    truncation), never as silent process death;
///  - read_frame takes an optional interrupt flag so a drain signal
///    (SIGTERM in the worker) can stop a BLOCKED reader cleanly: when the
///    flag is observed set, read_frame returns false exactly like a clean
///    end-of-stream instead of throwing on the partial frame.
inline constexpr std::int64_t kDefaultMaxFrameBytes = 256LL * 1024 * 1024;

/// Ignores SIGPIPE process-wide (idempotent). Every process that writes
/// wire frames to a pipe must call this once at startup; otherwise a peer
/// closing early kills the writer with SIGPIPE before write_frame can
/// surface the WireError.
void ignore_sigpipe();

/// Writes one frame; throws WireError on I/O failure (EPIPE from a closed
/// peer included). Retries EINTR internally.
void write_frame(std::FILE* out, std::span<const std::uint8_t> payload);

/// Reads one frame into `payload`. Returns false on clean end-of-stream
/// (EOF before any header byte) or when `interrupt` is set while waiting;
/// throws WireError on a truncated header or payload, or a length past
/// `max_frame_bytes`. Retries EINTR internally (checking `interrupt`
/// between attempts, which is how a signal handler unblocks the read).
[[nodiscard]] bool read_frame(std::FILE* in, std::vector<std::uint8_t>& payload,
                              std::int64_t max_frame_bytes = kDefaultMaxFrameBytes,
                              const std::atomic<bool>* interrupt = nullptr);

}  // namespace usb::wire
