// DetectionService: a session/request API over the scan engine.
//
// The paper's workflow — reverse-engineer one UAP-guided trigger per class,
// MAD-reduce the mask-L1 statistics — is a blocking Detector::detect() call
// per (model, method). Production traffic wants more: many models scanned
// by many methods concurrently, probe datasets shared across requests
// instead of regenerated per case, scans that can be cancelled, and
// progress that can be observed. The service owns that session state:
//
//  - one scan ThreadPool shared by every in-flight request (per-class jobs
//    of overlapping scans interleave on the same workers; the pool's
//    per-call completion tracking keeps the scans independent);
//  - a content-addressed ProbeStore (data/probe_store.h): requests name
//    their probe by (DatasetSpec, size, seed) and every request with the
//    same key shares one immutable Dataset + ProbeBatchCache across
//    methods, models, cases, and scales;
//  - a small executor crew that drains the request queue, so submit()
//    returns immediately with a future-like ScanHandle (wait / poll /
//    cancel / per-class progress callbacks).
//
// Determinism carries over unchanged: a report produced through the service
// is bit-identical to Detector::detect() on the same (model, probe, config)
// for any pool size, any executor count, and any interleaving with other
// requests — every per-class RNG stream still derives only from
// (base_seed, class), and the pool/cache overrides the service applies have
// no numeric effect (tests/test_detection_service.cpp pins submit() ==
// detect() byte-for-byte, including with async retirement enabled).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "data/probe_store.h"
#include "defenses/detector.h"
#include "defenses/scan_plan.h"
#include "utils/thread_pool.h"

namespace usb {

enum class ScanStatus {
  kQueued,     // submitted, not yet picked up by an executor
  kRunning,    // an executor is inside run_scan_plan
  kDone,       // report available
  kCancelled,  // cancel() (or service shutdown) stopped it
  kFailed,     // the scan threw; see ScanOutcome::error
};

[[nodiscard]] std::string to_string(ScanStatus status);

/// Terminal result of a scan. `report` is meaningful only when status is
/// kDone; `error` only when kFailed.
struct ScanOutcome {
  ScanStatus status = ScanStatus::kQueued;
  DetectionReport report;
  std::string error;
};

/// Per-request execution options. The default-constructed value changes
/// nothing: the scan runs exactly as the detector's own config dictates,
/// which is what makes default submit() byte-identical to detect().
struct ScanOptions {
  /// When set, replaces the detector's early-exit configuration — the
  /// intended switch for async retirement (EarlyExitOptions::async), which
  /// no detector config sets on its own.
  std::optional<EarlyExitOptions> early_exit;
  /// Per-class progress notifications (task finalized / early-retired).
  /// Invoked from scan worker threads, possibly concurrently — must be
  /// thread-safe and must not throw.
  ClassProgressFn progress;
};

/// One detection request. The service deep-copies the model at submit()
/// (so the caller may mutate or destroy it immediately after, and two
/// requests naming the same model never race on its forward caches) and
/// takes ownership of the detector (its config drives the scan; the plan's
/// closures borrow it for the scan's lifetime).
struct ScanRequest {
  Network* model = nullptr;
  DetectorPtr detector;
  /// Probe: either a content address resolved through the service's
  /// ProbeStore (preferred — shared across requests)...
  std::optional<ProbeKey> probe_key;
  /// ...or an explicit dataset, copied at submit(). probe_key wins if both
  /// are set.
  const Dataset* probe = nullptr;
  ScanOptions options;
};

namespace detail {
struct ScanState;
}  // namespace detail

/// Future-like view of a submitted scan. Cheap to copy; all methods are
/// thread-safe. Outlives the service (a handle keeps its outcome alive).
class ScanHandle {
 public:
  ScanHandle() = default;

  [[nodiscard]] std::uint64_t id() const;
  /// Current status without blocking.
  [[nodiscard]] ScanStatus poll() const;
  /// Blocks until the scan reaches a terminal status; returns the outcome
  /// (kept alive by this handle). Never throws on scan failure — inspect
  /// outcome.status / outcome.error.
  const ScanOutcome& wait() const;
  /// Requests cooperative cancellation (checked at class and round
  /// boundaries). Returns true if the scan had not yet reached a terminal
  /// status — the eventual status is then kCancelled unless the scan beat
  /// the flag to completion. The service stays fully reusable.
  bool cancel() const;

 private:
  friend class DetectionService;
  explicit ScanHandle(std::shared_ptr<detail::ScanState> state) : state_(std::move(state)) {}

  std::shared_ptr<detail::ScanState> state_;
};

/// What submit() does when the pending queue is at max_queued depth.
enum class AdmissionPolicy {
  kBlock,   // wait for an executor to drain a slot (throws on shutdown)
  kReject,  // throw QueueFull immediately, before cloning anything
};

/// Thrown by submit() under AdmissionPolicy::kReject when the pending queue
/// is full. The service stays fully usable; retry after draining.
struct QueueFull : std::runtime_error {
  explicit QueueFull(std::int64_t depth)
      : std::runtime_error("DetectionService: pending queue full (" + std::to_string(depth) +
                           " requests)") {}
};

struct DetectionServiceConfig {
  /// Workers of the shared scan pool. 0 sizes it like ThreadPool::global():
  /// USB_THREADS if set, else hardware concurrency capped at 16.
  int scan_threads = 0;
  /// Executor threads draining the request queue = scans in flight at once.
  int max_concurrent_scans = 2;
  /// Batching of ProbeStore entries; 128 matches the scheduler default so
  /// shared caches are adopted instead of rebuilt.
  std::int64_t eval_batch_size = 128;
  /// Admission control: maximum requests pending (submitted, not yet picked
  /// up by an executor). Every queued request holds a model clone, so a
  /// deep backlog holds one clone per request unboundedly — the cap bounds
  /// that peak. 0 (default) = unbounded. Running scans do not count.
  std::int64_t max_queued = 0;
  /// Behaviour at the cap; see AdmissionPolicy. The check (and a kReject
  /// throw) happens BEFORE the request's model is cloned or its probe
  /// resolved, so rejected submissions cost nothing.
  AdmissionPolicy admission_policy = AdmissionPolicy::kBlock;
  /// Probe-store eviction cap, forwarded to ProbeStoreOptions::max_bytes
  /// (0 = unlimited): long-lived services cap their resident probe
  /// materializations by LRU eviction; entries pinned by in-flight scans
  /// are never dropped.
  std::int64_t probe_store_max_bytes = 0;
};

class DetectionService {
 public:
  explicit DetectionService(DetectionServiceConfig config = {});
  /// Cancels every queued and running scan (their handles resolve to
  /// kCancelled) and joins the executors. Handles stay valid afterwards.
  ~DetectionService();

  DetectionService(const DetectionService&) = delete;
  DetectionService& operator=(const DetectionService&) = delete;

  /// Enqueues a scan and returns immediately. The model is cloned and the
  /// probe resolved (ProbeStore) or copied on the calling thread, so the
  /// request's borrowed pointers are dead weight the moment this returns.
  /// Throws std::invalid_argument on a malformed request (null model/
  /// detector, no probe). With max_queued set, a full queue either blocks
  /// this call until an executor drains a slot (kBlock; the admission slot
  /// is reserved before the model clone, so blocked submitters hold at most
  /// their own clone-in-progress) or throws QueueFull (kReject).
  ScanHandle submit(ScanRequest request);

  /// Blocks until every scan submitted so far has reached a terminal
  /// status. New submissions during the wait are not covered.
  void drain();

  [[nodiscard]] ProbeStore& probe_store() noexcept { return probe_store_; }
  [[nodiscard]] ThreadPool& scan_pool() noexcept { return scan_pool_; }
  [[nodiscard]] const DetectionServiceConfig& config() const noexcept { return config_; }

  [[nodiscard]] std::int64_t scans_submitted() const noexcept { return submitted_.load(); }
  [[nodiscard]] std::int64_t scans_completed() const noexcept { return completed_.load(); }
  [[nodiscard]] std::int64_t scans_cancelled() const noexcept { return cancelled_.load(); }
  [[nodiscard]] std::int64_t scans_failed() const noexcept { return failed_.load(); }

 private:
  void executor_loop();
  void execute(const std::shared_ptr<detail::ScanState>& state);

  DetectionServiceConfig config_;
  ThreadPool scan_pool_;
  ProbeStore probe_store_;

  /// Pending depth for admission: requests in the queue plus admission
  /// slots reserved by submitters still cloning. Caller must hold mutex_.
  [[nodiscard]] std::int64_t pending_depth_locked() const noexcept {
    return static_cast<std::int64_t>(queue_.size()) + reserved_slots_;
  }

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable queue_space_;  // signalled when an executor pops
  std::deque<std::shared_ptr<detail::ScanState>> queue_;
  std::vector<std::shared_ptr<detail::ScanState>> live_;  // queued or running
  std::int64_t reserved_slots_ = 0;  // admission slots held by in-flight submits
  bool shutting_down_ = false;
  std::vector<std::thread> executors_;

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> cancelled_{0};
  std::atomic<std::int64_t> failed_{0};
};

}  // namespace usb
