// DetectionService: a session/request API over the scan engine.
//
// The paper's workflow — reverse-engineer one UAP-guided trigger per class,
// MAD-reduce the mask-L1 statistics — is a blocking Detector::detect() call
// per (model, method). Production traffic wants more: many models scanned
// by many methods concurrently, probe datasets shared across requests
// instead of regenerated per case, scans that can be cancelled, and
// progress that can be observed. The service owns that session state:
//
//  - one scan ThreadPool shared by every in-flight request (tensor kernels
//    of overlapping scans interleave on the same workers);
//  - a content-addressed ProbeStore (data/probe_store.h): requests name
//    their probe by (DatasetSpec, size, seed) and every request with the
//    same key shares one immutable Dataset + ProbeBatchCache across
//    methods, models, cases, and scales;
//  - a GLOBAL CLASS-JOB SCHEDULER (service/round_scheduler.h): every
//    admitted scan is decomposed into schedulable stages — per-class task
//    construction, individual refinement rounds, retirements, finalizes —
//    and all admitted scans' stages flatten into one weighted fair-share
//    queue drained by a small dispatcher crew. Requests carry a strict
//    priority and a fair-share weight (ScanOptions), so a K=4 scan
//    submitted behind a K=43 scan on a saturated service interleaves with
//    it round-for-round and finishes first instead of waiting for the
//    whole backlog; dispatchers have no per-request affinity, so capacity
//    freed by one scan is stolen by whichever request is most deserving.
//
// Determinism carries over unchanged: a report produced through the service
// is bit-identical to Detector::detect() on the same (model, probe, config)
// for any pool size, any dispatcher count, any priority/weight assignment,
// and any interleaving with other requests. The argument (spelled out in
// class_scan_scheduler.h, restated here because the service is the
// cross-request case): every class trajectory is a schedule-free function
// of (base_seed, class) — run_steps slices concatenate bit-identically —
// and the only cross-class data flows are MAD cutoffs taken at logical
// points fixed by the schedule STRUCTURE, not by timing. The service
// replays exactly one of the three blocking schedules per scan: monolithic
// (no early exit), per-round barrier (early exit: the cutoff item runs
// only after every active class's round r completed), or async rendezvous
// (each class arrives after min_rounds rounds; the single cutoff is taken
// once all K arrived, and untethered classes check it BEFORE each further
// round). Scheduling decides only WHEN those fixed points are reached,
// never WHAT is computed at them — so fairness, priorities, and
// cross-request work-stealing have zero numeric effect
// (tests/test_detection_service.cpp pins submit() == detect()
// byte-for-byte, including with async retirement enabled and under
// mixed-request load).
//
// FAILURE SEMANTICS (the robustness layer; see also README "Failure
// semantics" and tests/test_fault_injection.cpp):
//  - deadlines: checked at every stage boundary (and by the scheduler's
//    blocking paths at round boundaries). Expiry resolves kTimedOut with a
//    partial report whose per_class_state says how far each class got.
//  - fault isolation: an exception escaping any stage item is routed to
//    the owning scan (kFailed + error); the dispatcher crew and every
//    other scan's queue keep draining — one faulty request fails only
//    itself.
//  - numerical quarantine: a class whose round statistic goes non-finite
//    is retired with ClassScanState::kNumericallyUnstable and peeled from
//    every MAD population; the scan still resolves kDone and the report
//    names the quarantined classes.
// When no fault occurs, no deadline is hit, and nothing is quarantined,
// every path above is inert and reports stay bit-identical to detect().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/probe_store.h"
#include "defenses/detector.h"
#include "defenses/scan_plan.h"
#include "service/round_scheduler.h"
#include "utils/thread_pool.h"

namespace usb {

enum class ScanStatus {
  kQueued,     // submitted, not yet admitted to the global scheduler
  kRunning,    // admitted; its stages are flowing through the dispatchers
  kDone,       // report available
  kCancelled,  // cancel() (or service shutdown) stopped it
  kFailed,     // the scan threw; see ScanOutcome::error
  kTimedOut,   // deadline expired; a PARTIAL report is available
};

[[nodiscard]] std::string to_string(ScanStatus status);

/// Terminal result of a scan. `report` is meaningful when status is kDone
/// (complete) or kTimedOut (partial: DetectionReport::per_class_state says
/// how far each class got; non-finalized classes are peeled from the
/// verdict); `error` only when kFailed.
struct ScanOutcome {
  ScanStatus status = ScanStatus::kQueued;
  DetectionReport report;
  std::string error;
};

/// Per-request execution options. The default-constructed value changes
/// nothing: the scan runs exactly as the detector's own config dictates,
/// which is what makes default submit() byte-identical to detect().
struct ScanOptions {
  /// When set, replaces the detector's early-exit configuration — the
  /// intended switch for async retirement (EarlyExitOptions::async), which
  /// no detector config sets on its own.
  std::optional<EarlyExitOptions> early_exit;
  /// Per-class progress notifications (task finalized / early-retired).
  /// Invoked from dispatcher threads, possibly concurrently — must be
  /// thread-safe and must not throw.
  ClassProgressFn progress;
  /// Strict scheduling priority: stages of a higher-priority scan always
  /// run before stages of lower-priority ones. No numeric effect.
  int priority = 0;
  /// Fair-share weight among equal-priority scans (see
  /// RoundScheduler::JobOptions::weight). Values <= 0 are clamped up to a
  /// tiny positive weight. No numeric effect.
  double fair_weight = 1.0;
  /// Wall-clock deadline, measured from submit(). <= 0 falls back to
  /// DetectionServiceConfig::default_deadline_seconds (whose 0 means no
  /// deadline). The deadline is checked at every stage boundary — never
  /// mid-kernel — so an expired scan resolves to kTimedOut within one
  /// stage's latency, with a partial report. A scan that finishes its last
  /// stage before anyone observes the expiry still resolves kDone:
  /// completed work is never thrown away. A scan still queued past its
  /// deadline is dropped without ever consuming a dispatcher. Deadlines
  /// that are set but never hit have no numeric effect (submit() stays
  /// byte-identical to detect()).
  double deadline_seconds = 0.0;
};

/// One detection request. The service deep-copies the model at submit()
/// (so the caller may mutate or destroy it immediately after, and two
/// requests naming the same model never race on its forward caches) and
/// takes ownership of the detector (its config drives the scan; the plan's
/// closures borrow it for the scan's lifetime).
struct ScanRequest {
  Network* model = nullptr;
  DetectorPtr detector;
  /// Probe: either a content address resolved through the service's
  /// ProbeStore (preferred — shared across requests)...
  std::optional<ProbeKey> probe_key;
  /// ...or an explicit dataset, copied at submit(). probe_key wins if both
  /// are set.
  const Dataset* probe = nullptr;
  ScanOptions options;
};

namespace detail {
struct ScanState;
class ScanExecution;
}  // namespace detail

/// Future-like view of a submitted scan. Cheap to copy; all methods are
/// thread-safe. Outlives the service (a handle keeps its outcome alive).
class ScanHandle {
 public:
  ScanHandle() = default;

  [[nodiscard]] std::uint64_t id() const;
  /// Current status without blocking.
  [[nodiscard]] ScanStatus poll() const;
  /// Blocks until the scan reaches a terminal status; returns the outcome
  /// (kept alive by this handle). Never throws on scan failure — inspect
  /// outcome.status / outcome.error. A scan with a deadline is nudged when
  /// the waiter observes expiry, so wait() on a deadline-expired scan that
  /// is still QUEUED resolves kTimedOut promptly without the scan ever
  /// running a stage.
  const ScanOutcome& wait() const;
  /// Requests cancellation. A scan still queued (not yet admitted to the
  /// scheduler) resolves to kCancelled IMMEDIATELY — its model clone is
  /// released, its admission slot freed, and it never runs a single stage.
  /// An admitted scan is cancelled cooperatively at stage boundaries.
  /// Returns true if the scan had not yet reached a terminal status — the
  /// eventual status is then kCancelled unless the scan beat the flag to
  /// completion. The service stays fully reusable.
  bool cancel() const;

 private:
  friend class DetectionService;
  explicit ScanHandle(std::shared_ptr<detail::ScanState> state) : state_(std::move(state)) {}

  std::shared_ptr<detail::ScanState> state_;
};

/// What submit() does when the pending queue is at max_queued depth.
enum class AdmissionPolicy {
  kBlock,   // wait for the scheduler to drain a slot (throws on shutdown)
  kReject,  // throw QueueFull immediately, before cloning anything
};

/// Thrown by submit() under AdmissionPolicy::kReject when the pending queue
/// is full. The service stays fully usable; retry after draining.
struct QueueFull : std::runtime_error {
  explicit QueueFull(std::int64_t depth)
      : std::runtime_error("DetectionService: pending queue full (" + std::to_string(depth) +
                           " requests)") {}
};

struct DetectionServiceConfig {
  /// Workers of the shared scan pool. 0 sizes it like ThreadPool::global():
  /// USB_THREADS if set, else hardware concurrency capped at 16.
  int scan_threads = 0;
  /// Scans ADMITTED to the global scheduler at once. Requests beyond the
  /// cap wait in the submission queue with ScanStatus::kQueued (their
  /// stages are not enqueued at all), preserving the admission semantics
  /// of max_queued. Admitted scans share the dispatcher crew fairly — this
  /// cap bounds how many scans hold live clones/tasks, not parallelism.
  int max_concurrent_scans = 2;
  /// Dispatcher threads of the global class-job scheduler = stage items in
  /// flight at once. 0 (default) sizes the crew like max_concurrent_scans.
  /// A single dispatcher still interleaves rounds of every admitted scan
  /// fairly — that is the point of the global queue.
  int round_dispatchers = 0;
  /// Batching of ProbeStore entries; 128 matches the scheduler default so
  /// shared caches are adopted instead of rebuilt.
  std::int64_t eval_batch_size = 128;
  /// Admission control: maximum requests pending (submitted, not yet
  /// admitted to the scheduler). Every queued request holds a model clone,
  /// so a deep backlog holds one clone per request unboundedly — the cap
  /// bounds that peak. 0 (default) = unbounded. Admitted scans do not
  /// count.
  std::int64_t max_queued = 0;
  /// Behaviour at the cap; see AdmissionPolicy. The check (and a kReject
  /// throw) happens BEFORE the request's model is cloned or its probe
  /// resolved, so rejected submissions cost nothing.
  AdmissionPolicy admission_policy = AdmissionPolicy::kBlock;
  /// Probe-store eviction cap, forwarded to ProbeStoreOptions::max_bytes
  /// (0 = unlimited): long-lived services cap their resident probe
  /// materializations by LRU eviction; entries pinned by in-flight scans
  /// are never dropped.
  std::int64_t probe_store_max_bytes = 0;
  /// Deadline applied to every scan whose ScanOptions::deadline_seconds is
  /// unset (<= 0). 0 (default) = scans run to completion.
  double default_deadline_seconds = 0.0;
};

class DetectionService {
 public:
  explicit DetectionService(DetectionServiceConfig config = {});
  /// Cancels every queued and running scan and joins the dispatcher crew.
  /// Handles stay valid afterwards and resolve to kCancelled — except
  /// scans already past their deadline, which resolve to kTimedOut (the
  /// cause that expired first wins; shutdown must not mask a deadline).
  ~DetectionService();

  DetectionService(const DetectionService&) = delete;
  DetectionService& operator=(const DetectionService&) = delete;

  /// Enqueues a scan and returns immediately. The model is cloned and the
  /// probe resolved (ProbeStore) or copied on the calling thread, so the
  /// request's borrowed pointers are dead weight the moment this returns.
  /// Throws std::invalid_argument on a malformed request (null model/
  /// detector, no probe). With max_queued set, a full queue either blocks
  /// this call until the scheduler drains a slot (kBlock; the admission
  /// slot is reserved before the model clone, so blocked submitters hold
  /// at most their own clone-in-progress) or throws QueueFull (kReject).
  ScanHandle submit(ScanRequest request);

  /// Blocks until every scan submitted so far has reached a terminal
  /// status. New submissions during the wait are not covered.
  void drain();

  [[nodiscard]] ProbeStore& probe_store() noexcept { return probe_store_; }
  [[nodiscard]] ThreadPool& scan_pool() noexcept { return scan_pool_; }
  [[nodiscard]] const DetectionServiceConfig& config() const noexcept { return config_; }

  [[nodiscard]] std::int64_t scans_submitted() const noexcept { return submitted_.load(); }
  [[nodiscard]] std::int64_t scans_completed() const noexcept { return completed_.load(); }
  [[nodiscard]] std::int64_t scans_cancelled() const noexcept { return cancelled_.load(); }
  [[nodiscard]] std::int64_t scans_failed() const noexcept { return failed_.load(); }
  [[nodiscard]] std::int64_t scans_timed_out() const noexcept { return timed_out_.load(); }
  /// Stage items executed by the global scheduler since construction.
  [[nodiscard]] std::int64_t rounds_dispatched() const { return scheduler_.items_executed(); }

 private:
  friend class detail::ScanExecution;

  /// Pending depth for admission: requests in the queue plus admission
  /// slots reserved by submitters still cloning. Caller must hold mutex_.
  [[nodiscard]] std::int64_t pending_depth_locked() const noexcept {
    return static_cast<std::int64_t>(queue_.size()) + reserved_slots_;
  }

  /// Called by a ScanExecution reaching a terminal state: removes it from
  /// live_, frees its admission slot, and COLLECTS (not launches — the
  /// caller holds the execution's lock) queued executions that now fit
  /// under max_concurrent_scans into `launches`.
  void retire_scan(const std::shared_ptr<detail::ScanState>& state,
                   const detail::ScanExecution* exec,
                   std::vector<std::shared_ptr<detail::ScanExecution>>& launches);

  DetectionServiceConfig config_;
  ThreadPool scan_pool_;
  ProbeStore probe_store_;

  std::mutex mutex_;
  std::condition_variable queue_space_;  // signalled when a slot frees
  std::condition_variable idle_;         // signalled when live_ empties
  std::deque<std::shared_ptr<detail::ScanExecution>> queue_;  // not yet admitted
  std::vector<std::shared_ptr<detail::ScanState>> live_;      // queued or admitted
  std::int64_t admitted_ = 0;        // scans currently admitted to the scheduler
  std::int64_t reserved_slots_ = 0;  // admission slots held by in-flight submits
  bool shutting_down_ = false;

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> cancelled_{0};
  std::atomic<std::int64_t> failed_{0};
  std::atomic<std::int64_t> timed_out_{0};

  /// Declared last: destroyed first, joining the dispatchers before any
  /// state they might touch goes away. The destructor body additionally
  /// cancels all scans and waits for live_ to empty before members start
  /// destructing at all.
  RoundScheduler scheduler_;
};

}  // namespace usb
