// DetectionService: a session/request API over the scan engine.
//
// The paper's workflow — reverse-engineer one UAP-guided trigger per class,
// MAD-reduce the mask-L1 statistics — is a blocking Detector::detect() call
// per (model, method). Production traffic wants more: many models scanned
// by many methods concurrently, probe datasets shared across requests
// instead of regenerated per case, scans that can be cancelled, and
// progress that can be observed. The service owns that session state:
//
//  - one scan ThreadPool shared by every in-flight request (tensor kernels
//    of overlapping scans interleave on the same workers);
//  - a content-addressed ProbeStore (data/probe_store.h): requests name
//    their probe by (DatasetSpec, size, seed) and every request with the
//    same key shares one immutable Dataset + ProbeBatchCache across
//    methods, models, cases, and scales;
//  - a GLOBAL CLASS-JOB SCHEDULER (service/round_scheduler.h): every
//    admitted scan is decomposed into schedulable stages — per-class task
//    construction, individual refinement rounds, retirements, finalizes —
//    and all admitted scans' stages flatten into one weighted fair-share
//    queue drained by a small dispatcher crew. Requests carry a strict
//    priority and a fair-share weight (ScanOptions), so a K=4 scan
//    submitted behind a K=43 scan on a saturated service interleaves with
//    it round-for-round and finishes first instead of waiting for the
//    whole backlog; dispatchers have no per-request affinity, so capacity
//    freed by one scan is stolen by whichever request is most deserving.
//
// Determinism carries over unchanged: a report produced through the service
// is bit-identical to Detector::detect() on the same (model, probe, config)
// for any pool size, any dispatcher count, any priority/weight assignment,
// and any interleaving with other requests. The argument (spelled out in
// class_scan_scheduler.h, restated here because the service is the
// cross-request case): every class trajectory is a schedule-free function
// of (base_seed, class) — run_steps slices concatenate bit-identically —
// and the only cross-class data flows are MAD cutoffs taken at logical
// points fixed by the schedule STRUCTURE, not by timing. The service
// replays exactly one of the three blocking schedules per scan: monolithic
// (no early exit), per-round barrier (early exit: the cutoff item runs
// only after every active class's round r completed), or async rendezvous
// (each class arrives after min_rounds rounds; the single cutoff is taken
// once all K arrived, and untethered classes check it BEFORE each further
// round). Scheduling decides only WHEN those fixed points are reached,
// never WHAT is computed at them — so fairness, priorities, and
// cross-request work-stealing have zero numeric effect
// (tests/test_detection_service.cpp pins submit() == detect()
// byte-for-byte, including with async retirement enabled and under
// mixed-request load).
//
// FAILURE SEMANTICS (the robustness layer; see also README "Failure
// semantics" and tests/test_fault_injection.cpp + tests/test_overload.cpp):
//  - deadlines: checked at every stage boundary (and by the scheduler's
//    blocking paths at round boundaries). Expiry resolves kTimedOut with a
//    partial report whose per_class_state says how far each class got.
//  - fault isolation: an exception escaping any stage item is routed to
//    the owning scan (kFailed + error); the dispatcher crew and every
//    other scan's queue keep draining — one faulty request fails only
//    itself.
//  - transient-fault retries: a stage that fails TRANSIENTLY (TransientError
//    / ScanError{transient} from a detector, a probe materialization
//    failure, an injected fault, an ENOMEM) is re-enqueued with exponential
//    backoff up to ScanOptions::max_retries times via the scheduler's timer
//    queue — no dispatcher ever sleeps through a backoff. A retried scan
//    that eventually succeeds is byte-identical to detect(); exhaustion
//    resolves kFailed with the retry count in ScanOutcome::retries.
//  - priority load shedding: past the queue-depth or memory watermarks
//    (DetectionServiceConfig::{shed_queue_depth, max_resident_bytes}) the
//    service sheds lowest-priority-then-newest QUEUED scans as kShed —
//    resolved immediately, admission slot freed — sparing
//    ScanOptions::unsheddable requests. Admitted scans are never shed.
//  - global memory budget: probe materializations, model clones, and arena
//    high-water bytes register with utils/memory_budget.h; the total drives
//    shedding and turns kBlock admission into byte backpressure.
//  - hung-scan watchdog: dispatchers heartbeat every item; a watchdog
//    thread (armed by stuck_item_seconds) flags items stuck past the bound,
//    surfaces them in ServiceHealth, and optionally fails the owning scan.
//  - numerical quarantine: a class whose round statistic goes non-finite
//    is retired with ClassScanState::kNumericallyUnstable and peeled from
//    every MAD population; the scan still resolves kDone and the report
//    names the quarantined classes.
// When no fault occurs, no deadline is hit, nothing is quarantined, and no
// watermark/retry/watchdog option is armed, every path above is inert and
// reports stay bit-identical to detect().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/probe_store.h"
#include "defenses/detector.h"
#include "defenses/scan_plan.h"
#include "service/model_store.h"
#include "service/round_scheduler.h"
#include "utils/thread_pool.h"

namespace usb {

enum class ScanStatus {
  kQueued,     // submitted, not yet admitted to the global scheduler
  kRunning,    // admitted; its stages are flowing through the dispatchers
  kDone,       // report available
  kCancelled,  // cancel() (or service shutdown) stopped it
  kFailed,     // the scan threw; see ScanOutcome::error
  kTimedOut,   // deadline expired; a PARTIAL report is available
  kShed,       // dropped while queued by overload shedding; never ran
};

[[nodiscard]] std::string to_string(ScanStatus status);

/// Terminal result of a scan. `report` is meaningful when status is kDone
/// (complete) or kTimedOut (partial: DetectionReport::per_class_state says
/// how far each class got; non-finalized classes are peeled from the
/// verdict); `error` only when kFailed or kShed (the shed reason).
struct ScanOutcome {
  ScanStatus status = ScanStatus::kQueued;
  DetectionReport report;
  std::string error;
  /// Stage items re-enqueued after a transient failure (see
  /// ScanOptions::max_retries). Recorded for every terminal status — a
  /// kFailed scan whose retry budget ran out reports how many were spent.
  std::int64_t retries = 0;
};

/// Per-request execution options. The default-constructed value changes
/// nothing: the scan runs exactly as the detector's own config dictates,
/// which is what makes default submit() byte-identical to detect().
struct ScanOptions {
  /// When set, replaces the detector's early-exit configuration — the
  /// intended switch for async retirement (EarlyExitOptions::async), which
  /// no detector config sets on its own.
  std::optional<EarlyExitOptions> early_exit;
  /// Per-class progress notifications (task finalized / early-retired).
  /// Invoked from dispatcher threads, possibly concurrently — must be
  /// thread-safe and must not throw.
  ClassProgressFn progress;
  /// Strict scheduling priority: stages of a higher-priority scan always
  /// run before stages of lower-priority ones. No numeric effect.
  int priority = 0;
  /// Fair-share weight among equal-priority scans (see
  /// RoundScheduler::JobOptions::weight). Values <= 0 are clamped up to a
  /// tiny positive weight. No numeric effect.
  double fair_weight = 1.0;
  /// Wall-clock deadline, measured from submit(). <= 0 falls back to
  /// DetectionServiceConfig::default_deadline_seconds (whose 0 means no
  /// deadline). The deadline is checked at every stage boundary — never
  /// mid-kernel — so an expired scan resolves to kTimedOut within one
  /// stage's latency, with a partial report. A scan that finishes its last
  /// stage before anyone observes the expiry still resolves kDone:
  /// completed work is never thrown away. A scan still queued past its
  /// deadline is dropped without ever consuming a dispatcher. Deadlines
  /// that are set but never hit have no numeric effect (submit() stays
  /// byte-identical to detect()).
  double deadline_seconds = 0.0;
  /// Transient-failure retries PER STAGE ITEM (probe materialization, a
  /// class construct, one refinement round, a finalize): a stage that
  /// throws TransientError / ScanError{transient} / fault::InjectedFault /
  /// std::bad_alloc is re-enqueued with exponential backoff until its
  /// per-item budget runs out, then the scan resolves kFailed with the
  /// count in ScanOutcome::retries. Safe because every retryable stage
  /// re-derives its work from pristine inputs (construct re-clones the
  /// submit-time model; rounds fault at entry, before mutation), so a
  /// retried scan that succeeds stays byte-identical to detect().
  /// < 0 (default) falls back to DetectionServiceConfig::default_max_retries.
  int max_retries = -1;
  /// First-retry backoff; doubles per subsequent attempt of the same item.
  /// < 0 (default) falls back to
  /// DetectionServiceConfig::default_retry_backoff_seconds.
  double retry_backoff_seconds = -1.0;
  /// Exempts this scan from overload shedding (it can still be cancelled,
  /// time out, or be rejected at admission). For must-run requests.
  bool unsheddable = false;
};

/// One detection request. The model comes in one of two forms:
///  - a live `Network*`, deep-copied at submit() (the caller may mutate or
///    destroy it immediately after, and two requests naming the same model
///    never race on its forward caches);
///  - a `model_ref` (zoo spec or checkpoint path), resolved through the
///    service's ModelStore inside the scan's FIRST STAGE — like probe_key:
///    a scan shed or cancelled while queued never loads anything, load
///    failures are retryable stage faults, and N concurrent scans naming
///    the same ref share ONE resident instance (pinned while any of them
///    runs) instead of N submit-time deep copies. Reports are byte-identical
///    either way.
/// Exactly one of the two must be set. The service takes ownership of the
/// detector (its config drives the scan; the plan's closures borrow it for
/// the scan's lifetime).
struct ScanRequest {
  Network* model = nullptr;
  /// Model by reference; see above. Set model XOR model_ref.
  std::optional<ModelRef> model_ref;
  DetectorPtr detector;
  /// Probe: either a content address resolved through the service's
  /// ProbeStore (preferred — shared across requests)...
  std::optional<ProbeKey> probe_key;
  /// ...or an explicit dataset, copied at submit(). probe_key wins if both
  /// are set.
  const Dataset* probe = nullptr;
  ScanOptions options;
};

namespace detail {
struct ScanState;
class ScanExecution;
}  // namespace detail

/// Future-like view of a submitted scan. Cheap to copy; all methods are
/// thread-safe. Outlives the service (a handle keeps its outcome alive).
class ScanHandle {
 public:
  ScanHandle() = default;

  [[nodiscard]] std::uint64_t id() const;
  /// Current status without blocking.
  [[nodiscard]] ScanStatus poll() const;
  /// Blocks until the scan reaches a terminal status; returns the outcome
  /// (kept alive by this handle). Never throws on scan failure — inspect
  /// outcome.status / outcome.error. A scan with a deadline is nudged when
  /// the waiter observes expiry, so wait() on a deadline-expired scan that
  /// is still QUEUED resolves kTimedOut promptly without the scan ever
  /// running a stage.
  const ScanOutcome& wait() const;
  /// Requests cancellation. A scan still queued (not yet admitted to the
  /// scheduler) resolves to kCancelled IMMEDIATELY — its model clone is
  /// released, its admission slot freed, and it never runs a single stage.
  /// An admitted scan is cancelled cooperatively at stage boundaries.
  /// Returns true if the scan had not yet reached a terminal status — the
  /// eventual status is then kCancelled unless the scan beat the flag to
  /// completion. The service stays fully reusable.
  bool cancel() const;
  /// Blocks until the scan reaches a terminal status OR `seconds` elapse,
  /// whichever comes first, and returns the CURRENT status either way —
  /// poll-with-timeout, never an error. Like wait(), a waiter observing
  /// deadline expiry nudges the scan toward kTimedOut.
  ScanStatus wait_for(double seconds) const;

 private:
  friend class DetectionService;
  explicit ScanHandle(std::shared_ptr<detail::ScanState> state) : state_(std::move(state)) {}

  std::shared_ptr<detail::ScanState> state_;
};

/// What submit() does when the pending queue is at max_queued depth (or,
/// with max_resident_bytes set, when the memory budget is saturated).
enum class AdmissionPolicy {
  kBlock,   // wait for the scheduler to drain a slot (throws on shutdown)
  kReject,  // throw QueueFull immediately, before cloning anything
};

[[nodiscard]] std::string to_string(AdmissionPolicy policy);

/// Thrown by submit() under AdmissionPolicy::kReject when the pending queue
/// is full (or the memory budget saturated). The service stays fully
/// usable; retry after draining.
struct QueueFull : std::runtime_error {
  explicit QueueFull(std::int64_t depth)
      : std::runtime_error("DetectionService: pending queue full (" + std::to_string(depth) +
                           " requests)"),
        depth_(depth) {}

  /// Pending depth (queued + reserved submissions) observed at the throw.
  [[nodiscard]] std::int64_t depth() const noexcept { return depth_; }

 private:
  std::int64_t depth_;
};

struct DetectionServiceConfig {
  /// Workers of the shared scan pool. 0 sizes it like ThreadPool::global():
  /// USB_THREADS if set, else hardware concurrency capped at 16.
  int scan_threads = 0;
  /// Scans ADMITTED to the global scheduler at once. Requests beyond the
  /// cap wait in the submission queue with ScanStatus::kQueued (their
  /// stages are not enqueued at all), preserving the admission semantics
  /// of max_queued. Admitted scans share the dispatcher crew fairly — this
  /// cap bounds how many scans hold live clones/tasks, not parallelism.
  int max_concurrent_scans = 2;
  /// Dispatcher threads of the global class-job scheduler = stage items in
  /// flight at once. 0 (default) sizes the crew like max_concurrent_scans.
  /// A single dispatcher still interleaves rounds of every admitted scan
  /// fairly — that is the point of the global queue.
  int round_dispatchers = 0;
  /// Batching of ProbeStore entries; 128 matches the scheduler default so
  /// shared caches are adopted instead of rebuilt.
  std::int64_t eval_batch_size = 128;
  /// Admission control: maximum requests pending (submitted, not yet
  /// admitted to the scheduler). Every queued request holds a model clone,
  /// so a deep backlog holds one clone per request unboundedly — the cap
  /// bounds that peak. 0 (default) = unbounded. Admitted scans do not
  /// count.
  std::int64_t max_queued = 0;
  /// Behaviour at the cap; see AdmissionPolicy. The check (and a kReject
  /// throw) happens BEFORE the request's model is cloned or its probe
  /// resolved, so rejected submissions cost nothing.
  AdmissionPolicy admission_policy = AdmissionPolicy::kBlock;
  /// Probe-store eviction cap, forwarded to ProbeStoreOptions::max_bytes
  /// (0 = unlimited): long-lived services cap their resident probe
  /// materializations by LRU eviction; entries pinned by in-flight scans
  /// are never dropped.
  std::int64_t probe_store_max_bytes = 0;
  /// Model-store eviction cap, forwarded to ModelStoreOptions::max_bytes
  /// (0 = unlimited). Same discipline as the probe store: LRU by bytes,
  /// models pinned by in-flight ref-based scans are never evicted.
  std::int64_t model_store_max_bytes = 0;
  /// Deadline applied to every scan whose ScanOptions::deadline_seconds is
  /// unset (<= 0). 0 (default) = scans run to completion.
  double default_deadline_seconds = 0.0;
  /// Retry budget applied to every scan whose ScanOptions::max_retries is
  /// unset (< 0). 0 (default) = transient failures fail like permanent
  /// ones, keeping the retry layer fully inert.
  int default_max_retries = 0;
  /// Backoff applied when ScanOptions::retry_backoff_seconds is unset.
  double default_retry_backoff_seconds = 0.05;
  /// Memory watermark: when the process MemoryBudget (probe data + model
  /// clones + arenas; see utils/memory_budget.h) exceeds this many bytes,
  /// (a) queued sheddable scans are shed lowest-priority-newest-first until
  /// the projection fits, and (b) kBlock admission blocks new submissions
  /// (kReject throws QueueFull) until a scan retires — byte backpressure,
  /// not just counts. 0 (default) = no memory policy.
  std::int64_t max_resident_bytes = 0;
  /// Queue-depth watermark: when more than this many scans sit QUEUED
  /// (admitted scans do not count), the lowest-priority newest sheddable
  /// queued scans resolve kShed until the depth fits. 0 (default) = never
  /// shed on depth.
  std::int64_t shed_queue_depth = 0;
  /// Arms the hung-scan watchdog: a background thread flags any stage item
  /// in flight longer than this (ServiceHealth::{stuck_items,
  /// stuck_flagged_total}, one flag per item). 0 (default) = no watchdog
  /// thread at all. Size it well above the longest honest round.
  double stuck_item_seconds = 0.0;
  /// With the watchdog armed: also FAIL the scan owning a stuck item
  /// (kFailed naming the stage) instead of only reporting it. Best-effort —
  /// the item itself cannot be pre-empted; the scan resolves when the stuck
  /// item finally returns (or at once if other items drain first).
  bool fail_stuck_scans = false;
};

/// One consistent-enough snapshot of service liveness, assembled on demand
/// by DetectionService::health(). Counters are monotone totals since
/// construction; gauges are instantaneous. Cheap: two mutexes plus a
/// wait-free heartbeat sweep — safe to poll from a monitoring loop.
struct ServiceHealth {
  // Queue gauges.
  std::int64_t queued_scans = 0;    // submitted, not yet admitted
  std::int64_t admitted_scans = 0;  // live in the round scheduler
  // Per-status counters (totals since construction).
  std::int64_t scans_submitted = 0;
  std::int64_t scans_completed = 0;
  std::int64_t scans_cancelled = 0;
  std::int64_t scans_failed = 0;
  std::int64_t scans_timed_out = 0;
  std::int64_t scans_shed = 0;
  // Retry layer.
  std::int64_t items_retried = 0;   // stage items re-enqueued after transient failures
  std::int64_t items_deferred = 0;  // currently parked in retry backoff
  // Memory budget (process-wide; see utils/memory_budget.h).
  std::int64_t budget_bytes = 0;
  std::int64_t budget_high_water_bytes = 0;
  std::int64_t budget_limit_bytes = 0;  // config max_resident_bytes (0 = none)
  // In-flight items (heartbeat sweep).
  std::int64_t in_flight_items = 0;
  double oldest_item_seconds = 0.0;    // age of the longest-running item
  std::string oldest_item_point;       // its stage label, e.g. "scan.round"
  std::uint64_t oldest_item_scan = 0;  // its owning scan id
  // Watchdog.
  std::int64_t stuck_items = 0;          // items past stuck_item_seconds right now
  std::int64_t stuck_flagged_total = 0;  // distinct items ever flagged
};

class DetectionService {
 public:
  explicit DetectionService(DetectionServiceConfig config = {});
  /// Cancels every queued and running scan and joins the dispatcher crew.
  /// Handles stay valid afterwards and resolve to kCancelled — except
  /// scans already past their deadline, which resolve to kTimedOut (the
  /// cause that expired first wins; shutdown must not mask a deadline).
  ~DetectionService();

  DetectionService(const DetectionService&) = delete;
  DetectionService& operator=(const DetectionService&) = delete;

  /// Enqueues a scan and returns immediately. A live model is cloned (and
  /// an explicit probe copied) on the calling thread, so the request's
  /// borrowed pointers are dead weight the moment this returns; a
  /// probe_key or model_ref, by contrast, is resolved through the
  /// ProbeStore/ModelStore inside the scan's FIRST STAGE — materialization
  /// and load failures are then retryable like any stage fault, and a scan
  /// shed or cancelled while queued never materializes anything. Ref-based
  /// requests skip the submit-time deep copy entirely: concurrent scans of
  /// one ref share the store's resident instance. Throws
  /// std::invalid_argument on a malformed request (model XOR model_ref
  /// violated, null detector, no probe). With max_queued set, a full
  /// queue either blocks this call until the scheduler drains a slot
  /// (kBlock; the admission slot is reserved before the model clone, so
  /// blocked submitters hold at most their own clone-in-progress) or
  /// throws QueueFull (kReject); with max_resident_bytes set the same
  /// policy gates on the memory budget. Submitting past a shed watermark
  /// resolves victims (possibly this scan) to kShed before returning.
  ScanHandle submit(ScanRequest request);

  /// Blocks until every scan submitted so far has reached a terminal
  /// status. New submissions during the wait are not covered.
  void drain();

  [[nodiscard]] ProbeStore& probe_store() noexcept { return probe_store_; }
  [[nodiscard]] ModelStore& model_store() noexcept { return model_store_; }
  [[nodiscard]] ThreadPool& scan_pool() noexcept { return scan_pool_; }
  [[nodiscard]] const DetectionServiceConfig& config() const noexcept { return config_; }

  [[nodiscard]] std::int64_t scans_submitted() const noexcept { return submitted_.load(); }
  [[nodiscard]] std::int64_t scans_completed() const noexcept { return completed_.load(); }
  [[nodiscard]] std::int64_t scans_cancelled() const noexcept { return cancelled_.load(); }
  [[nodiscard]] std::int64_t scans_failed() const noexcept { return failed_.load(); }
  [[nodiscard]] std::int64_t scans_timed_out() const noexcept { return timed_out_.load(); }
  /// Queued scans dropped by overload shedding (ScanStatus::kShed).
  [[nodiscard]] std::int64_t scans_shed() const noexcept { return shed_.load(); }
  /// Stage items re-enqueued after transient failures.
  [[nodiscard]] std::int64_t items_retried() const noexcept { return items_retried_.load(); }
  /// Stage items executed by the global scheduler since construction.
  [[nodiscard]] std::int64_t rounds_dispatched() const { return scheduler_.items_executed(); }

  /// Assembles a liveness snapshot; see ServiceHealth. Thread-safe, cheap,
  /// and side-effect-free — pollable from a monitoring loop.
  [[nodiscard]] ServiceHealth health() const;

 private:
  friend class detail::ScanExecution;

  /// Pending depth for admission: requests in the queue plus admission
  /// slots reserved by submitters still cloning. Caller must hold mutex_.
  [[nodiscard]] std::int64_t pending_depth_locked() const noexcept {
    return static_cast<std::int64_t>(queue_.size()) + reserved_slots_;
  }

  /// Called by a ScanExecution reaching a terminal state: removes it from
  /// live_, frees its admission slot, and COLLECTS (not launches — the
  /// caller holds the execution's lock) queued executions that now fit
  /// under max_concurrent_scans into `launches`.
  void retire_scan(const std::shared_ptr<detail::ScanState>& state,
                   const detail::ScanExecution* exec,
                   std::vector<std::shared_ptr<detail::ScanExecution>>& launches);

  /// Picks queued scans to shed until both watermarks (queue depth, memory
  /// budget projected after the victims' clone bytes release) fit: lowest
  /// priority first, newest first among equals, skipping unsheddable scans.
  /// Caller must hold mutex_ and resolve the victims (request_shed) outside
  /// it. Empty when no watermark is configured or exceeded.
  [[nodiscard]] std::vector<std::shared_ptr<detail::ScanExecution>> collect_shed_victims_locked();

  /// True when the memory watermark blocks new admissions (over budget with
  /// live scans that can still drain it).
  [[nodiscard]] bool over_byte_watermark_locked() const;

  void watchdog_loop();
  void watchdog_tick();

  DetectionServiceConfig config_;
  ThreadPool scan_pool_;
  ProbeStore probe_store_;
  ModelStore model_store_;

  mutable std::mutex mutex_;
  std::condition_variable queue_space_;  // signalled when a slot frees
  std::condition_variable idle_;         // signalled when live_ empties
  std::deque<std::shared_ptr<detail::ScanExecution>> queue_;  // not yet admitted
  std::vector<std::shared_ptr<detail::ScanState>> live_;      // queued or admitted
  std::int64_t admitted_ = 0;        // scans currently admitted to the scheduler
  std::int64_t reserved_slots_ = 0;  // admission slots held by in-flight submits
  bool shutting_down_ = false;

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> cancelled_{0};
  std::atomic<std::int64_t> failed_{0};
  std::atomic<std::int64_t> timed_out_{0};
  std::atomic<std::int64_t> shed_{0};
  std::atomic<std::int64_t> items_retried_{0};
  std::atomic<std::int64_t> stuck_flagged_{0};

  // Hung-scan watchdog (started only when config.stuck_item_seconds > 0;
  // joined at the top of the destructor, before any member it samples).
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  /// Items already flagged, keyed (dispatcher, start_ns) — a stable item
  /// identity. Touched only by the watchdog thread; rebuilt every tick from
  /// the live sample, so entries of finished items age out on their own.
  std::vector<std::pair<int, std::int64_t>> watchdog_flagged_;
  std::thread watchdog_;

  /// Declared last: destroyed first, joining the dispatchers before any
  /// state they might touch goes away. The destructor body additionally
  /// stops the watchdog, cancels all scans, and waits for live_ to empty
  /// before members start destructing at all.
  RoundScheduler scheduler_;
};

}  // namespace usb
