#include "service/worker_fleet.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "utils/fault_injection.h"

namespace usb {

namespace detail {

/// Shared request future. `dispatches`/`kills` are routing history and are
/// guarded by the FLEET mutex; everything below `mutex` is the future half,
/// guarded by the state's own mutex (never held while taking the fleet
/// mutex, so the ordering fleet-then-state is acyclic).
struct FleetRequestState {
  std::uint64_t id = 0;
  wire::WireScanRequest request;
  std::int64_t dispatches = 0;
  std::int64_t kills = 0;

  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  bool terminal = false;
  ScanStatus status = ScanStatus::kQueued;
  FleetOutcome outcome;
};

}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;
using detail::FleetRequestState;

std::string describe_wait_status(int status) {
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = strsignal(sig);
    return "signal " + std::to_string(sig) + " (" + (name != nullptr ? name : "?") + ")";
  }
  if (WIFEXITED(status)) {
    return "exit code " + std::to_string(WEXITSTATUS(status));
  }
  return "wait status " + std::to_string(status);
}

void resolve_state(const std::shared_ptr<FleetRequestState>& state, ScanStatus status,
                   std::string error, wire::WireScanResult* result) {
  const std::lock_guard<std::mutex> lock(state->mutex);
  if (state->terminal) return;
  state->status = status;
  state->outcome.status = status;
  state->outcome.error = std::move(error);
  if (result != nullptr) {
    state->outcome.retries = result->retries;
    state->outcome.report = std::move(result->report);
  }
  state->outcome.dispatches = state->dispatches;
  state->outcome.worker_kills = state->kills;
  state->terminal = true;
  state->cv.notify_all();
}

}  // namespace

ScanStatus FleetHandle::poll() const {
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->status;
}

const FleetOutcome& FleetHandle::wait() const {
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [this] { return state_->terminal; });
  return state_->outcome;
}

ScanStatus FleetHandle::wait_for(double seconds) const {
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait_for(lock, std::chrono::duration<double>(seconds),
                      [this] { return state_->terminal; });
  return state_->status;
}

struct WorkerFleet::Impl {
  enum class WorkerState {
    kDown,   // no process: awaiting (re)spawn, possibly in backoff
    kAlive,  // process up, routable
    kDying,  // death observed (EOF / truncation / EPIPE / silence /
             // waitpid), awaiting reap by the monitor
    kDead,   // shutdown only: reaped, never respawning
  };

  struct Worker {
    std::int64_t index = 0;
    WorkerState state = WorkerState::kDown;
    pid_t pid = -1;
    std::FILE* to = nullptr;    // supervisor -> worker stdin (requests, pings)
    std::FILE* from = nullptr;  // worker stdout -> supervisor (results, pongs)
    std::thread reader;
    std::int64_t in_flight = 0;
    std::int64_t restarts = 0;          // post-death spawns
    std::int64_t failures = 0;          // consecutive: backoff exponent
    bool ever_spawned = false;
    bool reaped = false;                // waitpid already collected the corpse
    int wait_status = 0;                // valid when reaped
    Clock::time_point last_pong;
    Clock::time_point last_ping;
    std::string last_death;
    Clock::time_point next_spawn_at;
  };

  struct InFlight {
    std::shared_ptr<FleetRequestState> state;
    std::int64_t worker = -1;
  };

  explicit Impl(FleetConfig config) : config_(std::move(config)) {
    if (config_.worker_argv.empty()) {
      throw std::runtime_error("WorkerFleet: worker_argv must name the worker binary");
    }
    if (config_.num_workers < 1) {
      throw std::runtime_error("WorkerFleet: num_workers must be >= 1");
    }
    wire::ignore_sigpipe();  // a dead worker's pipe must not kill the supervisor
    workers_.resize(static_cast<std::size_t>(config_.num_workers));
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        workers_[i].index = static_cast<std::int64_t>(i);
        spawn_locked(workers_[i]);  // failure schedules a backed-off retry
      }
    }
    monitor_ = std::thread([this] { monitor_loop(); });
  }

  ~Impl() { shutdown(); }

  // ---- spawn ------------------------------------------------------------

  /// Attempts to fork/exec one worker for `w`. On any failure (fleet.spawn
  /// fault, pipe/fork error) schedules a backed-off retry and returns false.
  bool spawn_locked(Worker& w) {
    try {
      USB_FAULT_POINT("fleet.spawn");
      // O_CLOEXEC on every pipe end: a worker must NOT inherit the pipes of
      // its siblings (or of the slot it replaces) — a stray inherited write
      // end would keep a dead sibling's stream open and mask its EOF.
      int to_child[2] = {-1, -1};
      int from_child[2] = {-1, -1};
      if (pipe2(to_child, O_CLOEXEC) != 0) {
        throw std::runtime_error("pipe2 failed");
      }
      if (pipe2(from_child, O_CLOEXEC) != 0) {
        close(to_child[0]);
        close(to_child[1]);
        throw std::runtime_error("pipe2 failed");
      }
      // argv built BEFORE fork: the child must only dup2/exec.
      std::vector<char*> argv;
      argv.reserve(config_.worker_argv.size() + 1);
      for (const std::string& arg : config_.worker_argv) {
        argv.push_back(const_cast<char*>(arg.c_str()));
      }
      argv.push_back(nullptr);
      const pid_t pid = fork();
      if (pid < 0) {
        close(to_child[0]);
        close(to_child[1]);
        close(from_child[0]);
        close(from_child[1]);
        throw std::runtime_error("fork failed");
      }
      if (pid == 0) {
        // Child. dup2 onto stdio clears CLOEXEC on the two fds the worker
        // owns; every other pipe end closes at exec. Unblock SIGTERM in
        // case the spawning thread had it masked — the worker's graceful
        // drain depends on receiving it.
        dup2(to_child[0], STDIN_FILENO);
        dup2(from_child[1], STDOUT_FILENO);
        sigset_t unblock;
        sigfillset(&unblock);
        sigprocmask(SIG_UNBLOCK, &unblock, nullptr);
        execv(argv[0], argv.data());
        _exit(127);  // exec failed: surfaces as instant EOF + exit code 127
      }
      close(to_child[0]);
      close(from_child[1]);
      w.to = fdopen(to_child[1], "w");
      w.from = fdopen(from_child[0], "r");
      if (w.to == nullptr || w.from == nullptr) {
        // fclose closes the underlying fd; close() only the end fdopen
        // never wrapped.
        if (w.to != nullptr) fclose(w.to); else close(to_child[1]);
        if (w.from != nullptr) fclose(w.from); else close(from_child[0]);
        w.to = nullptr;
        w.from = nullptr;
        kill(pid, SIGKILL);
        int status = 0;
        waitpid(pid, &status, 0);
        throw std::runtime_error("fdopen failed");
      }
      w.pid = pid;
      w.state = WorkerState::kAlive;
      w.reaped = false;
      w.wait_status = 0;
      w.in_flight = 0;
      const Clock::time_point now = Clock::now();
      w.last_pong = now;  // a fresh worker gets the full timeout to speak
      w.last_ping = now - std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(config_.heartbeat_interval_seconds));
      if (w.ever_spawned) {
        ++w.restarts;
        ++respawns_;
      }
      w.ever_spawned = true;
      const pid_t gen_pid = pid;
      std::FILE* gen_from = w.from;
      const std::int64_t index = w.index;
      w.reader = std::thread([this, index, gen_pid, gen_from] {
        reader_loop(index, gen_pid, gen_from);
      });
      return true;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "fleet: spawn of worker %lld failed: %s\n",
                   static_cast<long long>(w.index), error.what());
      schedule_respawn_locked(w);
      return false;
    }
  }

  /// Applies (and records) the next exponential backoff for slot `w` and
  /// schedules its respawn.
  void schedule_respawn_locked(Worker& w) {
    ++w.failures;
    double backoff = config_.respawn_backoff_initial_seconds;
    for (std::int64_t i = 1; i < w.failures; ++i) {
      backoff *= 2.0;
      if (backoff >= config_.respawn_backoff_max_seconds) break;
    }
    backoff = std::min(backoff, config_.respawn_backoff_max_seconds);
    respawn_backoffs_.push_back(backoff);
    w.next_spawn_at =
        Clock::now() +
        std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(backoff));
  }

  // ---- reader (one thread per live worker) ------------------------------

  void reader_loop(std::int64_t index, pid_t pid, std::FILE* from) {
    const std::int64_t max_frame =
        config_.max_frame_bytes > 0 ? config_.max_frame_bytes : wire::kDefaultMaxFrameBytes;
    std::vector<std::uint8_t> payload;
    try {
      while (wire::read_frame(from, payload, max_frame)) {
        const std::uint32_t record = wire::peek_record(payload);
        if (record == wire::kPongRecord) {
          (void)wire::decode_pong(payload);
          const std::lock_guard<std::mutex> lock(mutex_);
          Worker& w = workers_[static_cast<std::size_t>(index)];
          if (w.pid == pid) w.last_pong = Clock::now();
          continue;
        }
        if (record != wire::kResultRecord) {
          throw wire::WireError("unexpected record " + std::to_string(record) + " from worker");
        }
        // Decode outside the fleet lock: reports carry tensors.
        wire::WireScanResult result = wire::decode_result(payload);
        deliver_result(index, pid, std::move(result));
      }
    } catch (const wire::WireError& error) {
      // A truncated or corrupt frame is a worker dying mid-write; the slot
      // is dead either way. The router never wedges on a partial frame.
      std::fprintf(stderr, "fleet: worker %lld (pid %lld) stream error: %s\n",
                   static_cast<long long>(index), static_cast<long long>(pid), error.what());
    }
    // EOF (or stream error): first observation of this worker's death.
    const std::lock_guard<std::mutex> lock(mutex_);
    Worker& w = workers_[static_cast<std::size_t>(index)];
    if (w.pid == pid && w.state == WorkerState::kAlive) {
      w.state = WorkerState::kDying;
      cv_.notify_all();
    }
  }

  void deliver_result(std::int64_t index, pid_t pid, wire::WireScanResult result) {
    const std::lock_guard<std::mutex> lock(mutex_);
    Worker& w = workers_[static_cast<std::size_t>(index)];
    if (w.pid != pid) return;  // stale generation
    if (result.request_id == 0) {
      std::fprintf(stderr, "fleet: worker %lld answered an unattributable frame: %s\n",
                   static_cast<long long>(index), result.error.c_str());
      return;
    }
    const auto it = in_flight_.find(result.request_id);
    if (it == in_flight_.end() || it->second.worker != index) {
      // Resolved already, or re-dispatched to a survivor while this answer
      // raced in from a worker being torn down: drop the duplicate.
      return;
    }
    const std::shared_ptr<FleetRequestState> state = it->second.state;
    in_flight_.erase(it);
    --w.in_flight;
    w.failures = 0;  // a delivered result resets the slot's backoff
    ++completed_;
    resolve_state(state, result.status, result.error, &result);
  }

  // ---- monitor ----------------------------------------------------------

  void monitor_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!monitor_stop_) {
      sweep_exits_locked();
      reap_dying(lock);
      const Clock::time_point now = Clock::now();
      for (Worker& w : workers_) {
        if (w.state == WorkerState::kDown && now >= w.next_spawn_at) {
          spawn_locked(w);
        }
      }
      heartbeat_locked();
      route_locked();
      cv_.wait_for(lock, std::chrono::milliseconds(10));
    }
  }

  /// Poll-based stand-in for a SIGCHLD handler (a library must not own
  /// process-global signal dispositions): notices a child that exited even
  /// before its pipe EOF is consumed, and collects the corpse.
  void sweep_exits_locked() {
    for (Worker& w : workers_) {
      if ((w.state == WorkerState::kAlive || w.state == WorkerState::kDying) && w.pid > 0 &&
          !w.reaped) {
        int status = 0;
        if (waitpid(w.pid, &status, WNOHANG) == w.pid) {
          w.reaped = true;
          w.wait_status = status;
          if (w.state == WorkerState::kAlive) w.state = WorkerState::kDying;
        }
      }
    }
  }

  /// Monitor-side death handling: for every kDying worker, kill + reap the
  /// process, join its reader (draining any results it buffered before
  /// dying), then re-dispatch or quarantine its in-flight requests and
  /// schedule the respawn. `lock` is released around the blocking steps.
  void reap_dying(std::unique_lock<std::mutex>& lock) {
    for (Worker& w : workers_) {
      if (w.state != WorkerState::kDying) continue;
      // Phase 1 (locked): detach the write side so no more routing/pings.
      std::FILE* to = w.to;
      w.to = nullptr;
      const pid_t pid = w.pid;
      // Phase 2 (unlocked): blocking teardown. The reader keeps delivering
      // buffered results until EOF — w.pid is still `pid`, so they land.
      lock.unlock();
      if (to != nullptr) fclose(to);
      bool reaped;
      {
        const std::lock_guard<std::mutex> relock(mutex_);
        reaped = w.reaped;
      }
      int status = 0;
      if (!reaped) {
        kill(pid, SIGKILL);  // idempotent; ESRCH when already gone
        waitpid(pid, &status, 0);
      }
      if (w.reader.joinable()) w.reader.join();
      if (w.from != nullptr) fclose(w.from);
      w.from = nullptr;
      lock.lock();
      if (w.reaped) status = w.wait_status;
      w.last_death = describe_wait_status(status);
      std::fprintf(stderr, "fleet: worker %lld (pid %lld) died: %s\n",
                   static_cast<long long>(w.index), static_cast<long long>(pid),
                   w.last_death.c_str());
      // Phase 3 (locked): orphaned in-flight requests take a kill each,
      // then re-dispatch to survivors or quarantine.
      w.pid = -1;
      w.state = WorkerState::kDown;
      w.in_flight = 0;
      for (auto it = in_flight_.begin(); it != in_flight_.end();) {
        if (it->second.worker != w.index) {
          ++it;
          continue;
        }
        const std::shared_ptr<FleetRequestState> state = it->second.state;
        it = in_flight_.erase(it);
        ++state->kills;
        if (state->kills >= config_.max_request_kills) {
          ++quarantined_;
          resolve_state(state, ScanStatus::kFailed,
                        "poison request: dispatch #" + std::to_string(state->dispatches) +
                            " killed worker " + std::to_string(w.index) + " (pid " +
                            std::to_string(pid) + ", " + w.last_death +
                            "); quarantined after " + std::to_string(state->kills) +
                            " worker kills",
                        nullptr);
        } else {
          ++redispatches_;
          {
            const std::lock_guard<std::mutex> state_lock(state->mutex);
            if (state->terminal) continue;
            state->status = ScanStatus::kQueued;
          }
          pending_.push_front(state);  // re-dispatched work keeps its place
        }
      }
      schedule_respawn_locked(w);
    }
  }

  void heartbeat_locked() {
    const Clock::time_point now = Clock::now();
    for (Worker& w : workers_) {
      if (w.state != WorkerState::kAlive) continue;
      const double silence = std::chrono::duration<double>(now - w.last_pong).count();
      if (silence > config_.heartbeat_timeout_seconds) {
        std::fprintf(stderr, "fleet: worker %lld (pid %lld) heartbeat-silent for %.2fs: killing\n",
                     static_cast<long long>(w.index), static_cast<long long>(w.pid), silence);
        w.state = WorkerState::kDying;
        continue;
      }
      if (std::chrono::duration<double>(now - w.last_ping).count() <
          config_.heartbeat_interval_seconds) {
        continue;
      }
      w.last_ping = now;
      try {
        USB_FAULT_POINT("fleet.heartbeat");
        wire::write_frame(w.to, wire::encode_ping(++ping_nonce_));
      } catch (const std::exception&) {
        // A ping that cannot be delivered (EPIPE, or the fleet.heartbeat
        // fault standing in for a lost heartbeat) means the worker is
        // unreachable: same as silence.
        w.state = WorkerState::kDying;
      }
    }
  }

  void route_locked() {
    while (!pending_.empty()) {
      Worker* best = nullptr;
      for (Worker& w : workers_) {
        if (w.state != WorkerState::kAlive) continue;
        if (w.in_flight >= config_.max_in_flight_per_worker) continue;
        if (best == nullptr || w.in_flight < best->in_flight) best = &w;
      }
      if (best == nullptr) return;  // every survivor at cap (or none alive)
      const std::shared_ptr<FleetRequestState> state = pending_.front();
      pending_.pop_front();
      in_flight_[state->id] = InFlight{state, best->index};
      ++best->in_flight;
      ++state->dispatches;
      {
        const std::lock_guard<std::mutex> state_lock(state->mutex);
        state->status = ScanStatus::kRunning;
      }
      try {
        USB_FAULT_POINT("fleet.route");
        wire::write_frame(best->to, wire::encode_request(state->request));
      } catch (const std::exception& error) {
        // Write failure IS worker death (EPIPE from a gone process, or the
        // fleet.route fault standing in for one). The request is already
        // in in_flight_ assigned to this worker, so the death path charges
        // it a kill and re-dispatches — exactly as if the worker had taken
        // the frame and crashed on it.
        std::fprintf(stderr, "fleet: dispatch to worker %lld failed: %s\n",
                     static_cast<long long>(best->index), error.what());
        if (best->state == WorkerState::kAlive) best->state = WorkerState::kDying;
        return;  // let the monitor reap before routing more
      }
    }
  }

  // ---- submit / shutdown / health ---------------------------------------

  FleetHandle submit(wire::WireScanRequest request) {
    auto state = std::make_shared<FleetRequestState>();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!accepting_) {
        resolve_state(state, ScanStatus::kCancelled, "fleet shutdown", nullptr);
        return FleetHandle(std::move(state));
      }
      state->id = next_id_++;
      request.request_id = state->id;
      state->request = std::move(request);
      ++submitted_;
      pending_.push_back(state);
    }
    cv_.notify_all();
    return FleetHandle(std::move(state));
  }

  void shutdown() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (shutdown_started_) {
        shutdown_cv_.wait(lock, [this] { return shutdown_done_; });
        return;
      }
      shutdown_started_ = true;
      accepting_ = false;
      monitor_stop_ = true;
      // Stop routing: queued requests will never run.
      while (!pending_.empty()) {
        resolve_state(pending_.front(), ScanStatus::kCancelled, "fleet shutdown", nullptr);
        pending_.pop_front();
      }
      cv_.notify_all();
    }
    if (monitor_.joinable()) monitor_.join();
    // Rung 1: EOF drain. Closing a worker's stdin asks it to finish its
    // in-flight scans, flush their results, and exit 0.
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (Worker& w : workers_) {
        if (w.to != nullptr) {
          fclose(w.to);
          w.to = nullptr;
        }
      }
    }
    wait_for_exits(config_.drain_wait_seconds);
    // Rung 2: SIGTERM — the worker's own graceful-drain signal.
    signal_remaining(SIGTERM);
    wait_for_exits(config_.sigterm_wait_seconds);
    // Rung 3: SIGKILL cannot be ignored; the wait is a formality.
    signal_remaining(SIGKILL);
    wait_for_exits(10.0);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (auto& [id, entry] : in_flight_) {
        resolve_state(entry.state, ScanStatus::kCancelled, "fleet shutdown", nullptr);
      }
      in_flight_.clear();
      shutdown_done_ = true;
      shutdown_cv_.notify_all();
    }
  }

  void signal_remaining(int sig) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (Worker& w : workers_) {
      if (w.pid > 0 && !w.reaped) kill(w.pid, sig);
    }
  }

  /// Shutdown helper: polls (WNOHANG) for worker exits until all are gone
  /// or `budget_seconds` elapse, finalizing each exited worker (join its
  /// reader — which first drains the results the worker flushed — then
  /// close the read end).
  void wait_for_exits(double budget_seconds) {
    const Clock::time_point deadline =
        Clock::now() +
        std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(budget_seconds));
    for (;;) {
      bool any_live = false;
      std::vector<Worker*> exited;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (Worker& w : workers_) {
          if (w.pid <= 0) continue;
          if (!w.reaped) {
            int status = 0;
            if (waitpid(w.pid, &status, WNOHANG) == w.pid) {
              w.reaped = true;
              w.wait_status = status;
            }
          }
          if (w.reaped) {
            exited.push_back(&w);
          } else {
            any_live = true;
          }
        }
      }
      for (Worker* w : exited) {
        if (w->reader.joinable()) w->reader.join();
        const std::lock_guard<std::mutex> lock(mutex_);
        if (w->from != nullptr) {
          fclose(w->from);
          w->from = nullptr;
        }
        w->last_death = describe_wait_status(w->wait_status);
        w->pid = -1;
        w->state = WorkerState::kDead;
      }
      if (!any_live) return;
      if (Clock::now() >= deadline) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  FleetHealth health() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    FleetHealth health;
    const Clock::time_point now = Clock::now();
    health.workers.reserve(workers_.size());
    for (const Worker& w : workers_) {
      WorkerHealth worker;
      worker.index = w.index;
      worker.pid = w.pid;
      worker.alive = w.state == WorkerState::kAlive;
      worker.in_flight = w.in_flight;
      worker.restarts = w.restarts;
      worker.last_heartbeat_age_seconds =
          worker.alive ? std::chrono::duration<double>(now - w.last_pong).count() : 0.0;
      worker.last_death = w.last_death;
      health.workers.push_back(std::move(worker));
    }
    health.queued_requests = static_cast<std::int64_t>(pending_.size());
    health.in_flight_requests = static_cast<std::int64_t>(in_flight_.size());
    health.requests_submitted = submitted_;
    health.requests_completed = completed_;
    health.requests_quarantined = quarantined_;
    health.respawns_total = respawns_;
    health.redispatches_total = redispatches_;
    health.respawn_backoffs_seconds = respawn_backoffs_;
    return health;
  }

  FleetConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;           // monitor wake-ups
  std::condition_variable shutdown_cv_;  // second shutdown() caller parks here
  std::vector<Worker> workers_;          // sized once; slots never move
  std::deque<std::shared_ptr<FleetRequestState>> pending_;
  std::unordered_map<std::uint64_t, InFlight> in_flight_;
  std::uint64_t next_id_ = 1;  // 0 is the wire's "unattributable" id
  std::uint64_t ping_nonce_ = 0;
  std::int64_t submitted_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t quarantined_ = 0;
  std::int64_t respawns_ = 0;
  std::int64_t redispatches_ = 0;
  std::vector<double> respawn_backoffs_;
  bool accepting_ = true;
  bool monitor_stop_ = false;
  bool shutdown_started_ = false;
  bool shutdown_done_ = false;
  std::thread monitor_;
};

WorkerFleet::WorkerFleet(FleetConfig config) : impl_(std::make_unique<Impl>(std::move(config))) {}

WorkerFleet::~WorkerFleet() = default;

FleetHandle WorkerFleet::submit(wire::WireScanRequest request) {
  return impl_->submit(std::move(request));
}

void WorkerFleet::shutdown() { impl_->shutdown(); }

FleetHealth WorkerFleet::health() const { return impl_->health(); }

}  // namespace usb
