// Crash-resilient process-sharded scan fleet.
//
// WorkerFleet is a SUPERVISOR: it fork/execs N scan worker processes
// (examples/scan_server, whose loop is src/service/scan_worker), connects
// each by a pipe pair speaking the PR 9/10 wire protocol, and turns
// submissions into futures the way DetectionService does — except the scans
// run in OTHER PROCESSES, so a detector that segfaults, aborts, leaks until
// the OOM killer fires, or wedges a thread takes down one worker, never the
// fleet (the whole point: process isolation is the containment boundary the
// in-process fault harness of PR 8 cannot give).
//
// Supervision tree:
//
//   WorkerFleet (supervisor process)
//     ├── monitor thread     pings workers, declares heartbeat-silent ones
//     │                      dead, reaps corpses, respawns with backoff,
//     │                      routes queued requests (least-loaded, capped)
//     ├── worker[0] reader ──┐ one thread per worker: demultiplexes result
//     ├── worker[1] reader ──┤ and pong frames, first observer of EOF and
//     │   ...                │ truncated frames
//     └── worker[N-1] reader ┘
//          │ pipes │
//     scan_server processes (each: DetectionService + scan_worker loop)
//
// Failure semantics (how a worker death is detected, and what happens):
//   pipe EOF / truncated frame  reader thread sees the worker's stdout
//                               close or a frame die mid-payload (a process
//                               killed mid-write) -> worker declared dead
//   write failure (EPIPE)       router's request write hits a closed stdin
//                               -> worker declared dead
//   heartbeat silence           monitor pings every heartbeat_interval; no
//                               pong within heartbeat_timeout -> the worker
//                               is wedged (pongs come from its reading
//                               thread, never behind a scan) -> SIGKILL
//   any of the above            corpse reaped (waitpid; exit detail
//                               recorded), in-flight requests re-dispatched
//                               to survivors — safe because reports are
//                               deterministic — and the worker respawned
//                               with exponential backoff
//   poison request              a request whose worker died under it
//                               max_request_kills times is quarantined:
//                               resolved kFailed naming the workers it
//                               killed and how they died, NOT re-dispatched
//                               a third time to take down the whole fleet
//
// Shutdown is a graceful drain with bounded escalation: stop routing, close
// every worker's stdin (EOF = drain: finish in-flight, flush, exit 0), wait
// drain_wait_seconds, SIGTERM stragglers (the worker's own drain signal),
// wait sigterm_wait_seconds, SIGKILL what remains. Requests still
// unresolved resolve kCancelled("fleet shutdown").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/detection_service.h"
#include "service/wire.h"

namespace usb {

namespace detail {
struct FleetRequestState;
}  // namespace detail

struct FleetConfig {
  /// argv of the worker binary (argv[0] = path). The fleet appends nothing:
  /// pass --steps/--hazards here. Every worker runs the same command, so
  /// every worker scans identically (re-dispatch depends on it).
  std::vector<std::string> worker_argv;
  std::int64_t num_workers = 2;
  /// Per-worker cap on dispatched-but-unanswered requests. Routing picks
  /// the least-loaded worker below its cap; when all are at cap, requests
  /// queue in the supervisor.
  std::int64_t max_in_flight_per_worker = 4;
  /// Heartbeat cadence and patience. A worker that answers no ping for
  /// heartbeat_timeout_seconds is declared wedged and killed. Pongs are
  /// answered from the worker's frame-reading thread, so a long scan never
  /// looks like silence (slow scans are the worker-side watchdog's job).
  double heartbeat_interval_seconds = 0.25;
  double heartbeat_timeout_seconds = 5.0;
  /// Respawn backoff: first respawn after a death waits
  /// respawn_backoff_initial_seconds, doubling per consecutive failure of
  /// that slot up to respawn_backoff_max_seconds; reset by the slot
  /// delivering a result.
  double respawn_backoff_initial_seconds = 0.05;
  double respawn_backoff_max_seconds = 2.0;
  /// A request whose worker dies under it this many times is quarantined
  /// (resolved kFailed) instead of re-dispatched again.
  std::int64_t max_request_kills = 2;
  /// Shutdown escalation budget per rung (EOF drain, then SIGTERM).
  double drain_wait_seconds = 10.0;
  double sigterm_wait_seconds = 2.0;
  std::int64_t max_frame_bytes = 0;  // 0 = wire::kDefaultMaxFrameBytes
};

/// Terminal result of a fleet submission: the worker's WireScanResult fields
/// plus the fleet's own dispatch history for the request.
struct FleetOutcome {
  ScanStatus status = ScanStatus::kQueued;
  std::string error;
  /// Worker-side stage retries (ScanOutcome::retries, from the wire).
  std::int64_t retries = 0;
  DetectionReport report;
  /// How many times the request was written to a worker (1 = no failure;
  /// 2+ = re-dispatched after worker deaths).
  std::int64_t dispatches = 0;
  /// How many workers died while this request was in flight on them.
  std::int64_t worker_kills = 0;
};

/// Future for one fleet submission; same shape as ScanHandle. Copyable and
/// cheap; outcomes stay alive as long as any handle does.
class FleetHandle {
 public:
  FleetHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] ScanStatus poll() const;
  /// Blocks until terminal (worker answered, request quarantined, or fleet
  /// shut down). Never throws on scan failure — inspect outcome.status.
  const FleetOutcome& wait() const;
  /// Blocks at most `seconds`; returns the status observed.
  ScanStatus wait_for(double seconds) const;

 private:
  friend class WorkerFleet;
  explicit FleetHandle(std::shared_ptr<detail::FleetRequestState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::FleetRequestState> state_;
};

/// One worker slot's gauges for FleetHealth.
struct WorkerHealth {
  std::int64_t index = 0;
  std::int64_t pid = -1;        // -1 while down/backing off
  bool alive = false;
  std::int64_t in_flight = 0;   // dispatched, unanswered
  std::int64_t restarts = 0;    // respawns of this slot (post-death spawns)
  double last_heartbeat_age_seconds = 0.0;  // since last pong (or spawn)
  /// How the last corpse died ("signal 9 (killed)", "exit code 1"); empty
  /// until the slot's first death.
  std::string last_death;
};

/// Point-in-time snapshot of the fleet, ServiceHealth-style.
struct FleetHealth {
  std::vector<WorkerHealth> workers;
  std::int64_t queued_requests = 0;      // accepted, not yet dispatched
  std::int64_t in_flight_requests = 0;   // dispatched, unanswered
  std::int64_t requests_submitted = 0;
  std::int64_t requests_completed = 0;   // resolved by a worker result
  std::int64_t requests_quarantined = 0; // poison: resolved kFailed
  std::int64_t respawns_total = 0;       // post-death spawns, all slots
  std::int64_t redispatches_total = 0;   // re-routes after worker deaths
  /// Every backoff delay applied before a respawn attempt, in order — the
  /// observable the backoff-schedule tests assert doubling on.
  std::vector<double> respawn_backoffs_seconds;
};

class WorkerFleet {
 public:
  /// Spawns the initial workers (synchronously — returns with every slot
  /// either alive or already in its backoff/retry cycle) and starts the
  /// monitor. Throws std::runtime_error when config is unusable (empty
  /// worker_argv, num_workers < 1).
  explicit WorkerFleet(FleetConfig config);
  /// shutdown() if the caller has not.
  ~WorkerFleet();

  WorkerFleet(const WorkerFleet&) = delete;
  WorkerFleet& operator=(const WorkerFleet&) = delete;

  /// Accepts a request for dispatch (request_id is ASSIGNED BY THE FLEET —
  /// any caller-set value is overwritten) and returns its future. After
  /// shutdown() begins, resolves immediately as kCancelled.
  [[nodiscard]] FleetHandle submit(wire::WireScanRequest request);

  /// Graceful drain with bounded escalation (see file comment). Idempotent;
  /// safe to call while submissions race (they resolve kCancelled).
  void shutdown();

  [[nodiscard]] FleetHealth health() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace usb
