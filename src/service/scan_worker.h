// The scan worker process loop: one DetectionService driven by wire frames.
//
// run_scan_worker() is the body of examples/scan_server — in the library so
// the WorkerFleet tests and benches exercise the exact code the shipped
// binary runs, and so the worker side of the protocol has one home. The
// loop reads frames from `in` until end-of-stream (or SIGTERM — see below),
// answers ping frames with pongs IMMEDIATELY from the reading thread (so
// heartbeat silence observed by a supervisor means the process is dead or
// wedged, never merely busy scanning), submits every request to the service
// as it arrives, and streams result frames — tagged with the request id —
// back AS SCANS COMPLETE, not in submission order.
//
// Failure handling:
//  - a frame that fails to decode, or names an unknown method, gets a
//    kFailed result in reply (request id 0 when the decode died before the
//    id could be read) — one bad payload never desyncs the stream;
//  - a peer that closes the result stream early surfaces as a WireError
//    (SIGPIPE is ignored); the worker logs it and exits 1 instead of dying
//    silently mid-write;
//  - SIGTERM is a GRACEFUL DRAIN: stop reading new requests (the handler
//    interrupts even a reader blocked on an idle pipe), finish every
//    in-flight scan, flush their result frames, exit 0. This is the first
//    rung of a supervisor's shutdown escalation (EOF/SIGTERM -> SIGKILL).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "defenses/detector.h"
#include "service/detection_service.h"

namespace usb {

struct ScanWorkerOptions {
  /// Per-class refinement budget handed to make_wire_detector. The detector
  /// CONFIGURATION lives on the worker, versioned with its binary — the
  /// wire ships only the method name, so every worker of a fleet scans
  /// identically.
  std::int64_t steps = 12;
  /// Forwarded to the worker's DetectionService (model_store_max_bytes and
  /// friends).
  DetectionServiceConfig service;
  /// Frame streams; default stdin/stdout in the shipped binary.
  std::FILE* in = nullptr;   // nullptr = stdin
  std::FILE* out = nullptr;  // nullptr = stdout
  std::int64_t max_frame_bytes = 0;  // 0 = wire::kDefaultMaxFrameBytes
  /// Accepts the magic hazard methods ("__crash__", "__wedge__",
  /// "__garble__") that make the worker misbehave on purpose — the fault
  /// harness of the fleet tests (a real SIGABRT mid-scan, real heartbeat
  /// silence, a real partial frame from a dying process). NEVER enable
  /// outside tests: a hazard request kills or wedges the whole worker.
  bool enable_test_hazards = false;
};

/// Maps a wire method name to a demo-scale configured detector ("USB",
/// "NC", "TABOR"); nullptr for unknown names. `steps` bounds the per-class
/// refinement; the USB crafting knobs shrink alongside it when small.
/// Shared by the worker loop, the fleet example, and the tests so the
/// "byte-identical to detect()" comparisons construct the same detector
/// the worker ran.
[[nodiscard]] DetectorPtr make_wire_detector(const std::string& method, std::int64_t steps);

/// Runs the worker loop until end-of-stream or SIGTERM drain; returns the
/// process exit code (0 = every accepted frame was answered and flushed).
/// Installs SIGTERM/SIGPIPE handling on the calling thread, which must be
/// the process main thread.
[[nodiscard]] int run_scan_worker(const ScanWorkerOptions& options);

}  // namespace usb
