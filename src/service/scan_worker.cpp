#include "service/scan_worker.h"

#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/usb.h"
#include "defenses/neural_cleanse.h"
#include "defenses/tabor.h"
#include "service/wire.h"

namespace usb {
namespace {

// SIGTERM drain flag. Process-global by necessity (signal handlers cannot
// capture); run_scan_worker is a once-per-process entry point.
std::atomic<bool> g_drain{false};

void on_sigterm(int) { g_drain.store(true, std::memory_order_relaxed); }

/// Installs the SIGTERM drain handler WITHOUT SA_RESTART, so the signal
/// interrupts a reader blocked in read() (wire::read_frame retries EINTR
/// only until it observes the drain flag).
void install_drain_handler() {
  struct sigaction action = {};
  action.sa_handler = on_sigterm;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: the EINTR is the wake-up
  sigaction(SIGTERM, &action, nullptr);
}

/// One accepted request: a live handle waiting for its scan, already tagged
/// with the wire request id.
struct PendingScan {
  std::uint64_t request_id = 0;
  ScanHandle handle;
};

/// Serializes result/pong frames onto the single output stream. write()
/// returns false once the peer is gone so callers can stop producing.
class FrameWriter {
 public:
  FrameWriter(std::FILE* out) : out_(out) {}

  bool write(const std::vector<std::uint8_t>& payload) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (dead_) return false;
    try {
      wire::write_frame(out_, payload);
    } catch (const wire::WireError& error) {
      std::fprintf(stderr, "scan_worker: result stream lost: %s\n", error.what());
      dead_ = true;
    }
    return !dead_;
  }

  [[nodiscard]] bool dead() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return dead_;
  }

 private:
  std::FILE* out_;
  mutable std::mutex mutex_;
  bool dead_ = false;
};

wire::WireScanResult outcome_to_result(std::uint64_t request_id, const ScanOutcome& outcome) {
  wire::WireScanResult result;
  result.request_id = request_id;
  result.status = outcome.status;
  result.error = outcome.error;
  result.retries = outcome.retries;
  result.report = outcome.report;
  return result;
}

wire::WireScanResult failed_result(std::uint64_t request_id, const std::string& error) {
  wire::WireScanResult result;
  result.request_id = request_id;
  result.status = ScanStatus::kFailed;
  result.error = error;
  return result;
}

/// Test hazard: emit a deliberately TRUNCATED frame (length prefix promising
/// more bytes than follow) and die, simulating a worker crashing mid-write.
/// The supervisor's reader must treat the partial frame as worker death,
/// never wedge on it.
[[noreturn]] void garble_and_die(std::FILE* out) {
  const std::uint32_t promised = 64;
  (void)std::fwrite(&promised, sizeof(promised), 1, out);
  const std::uint8_t half[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  (void)std::fwrite(half, 1, sizeof(half), out);
  (void)std::fflush(out);
  _exit(1);
}

}  // namespace

DetectorPtr make_wire_detector(const std::string& method, std::int64_t steps) {
  if (method == "NC") {
    ReverseOptConfig config;
    config.steps = steps;
    return std::make_unique<NeuralCleanse>(config);
  }
  if (method == "TABOR") {
    TaborConfig config;
    config.base.steps = steps;
    return std::make_unique<Tabor>(config);
  }
  if (method == "USB") {
    UsbConfig config;
    config.refine_steps = steps;
    if (steps <= 16) {
      config.uap.max_passes = 1;
      config.uap.craft_size = 32;
      config.uap.batch_size = 16;
      config.batch_size = 8;
    }
    return std::make_unique<UsbDetector>(config);
  }
  return nullptr;
}

int run_scan_worker(const ScanWorkerOptions& options) {
  std::FILE* in = options.in != nullptr ? options.in : stdin;
  std::FILE* out = options.out != nullptr ? options.out : stdout;
  const std::int64_t max_frame =
      options.max_frame_bytes > 0 ? options.max_frame_bytes : wire::kDefaultMaxFrameBytes;

  wire::ignore_sigpipe();
  g_drain.store(false, std::memory_order_relaxed);
  install_drain_handler();

  // Every thread spawned below (service dispatchers/pool, the completion
  // watcher) inherits a blocked SIGTERM, so the signal is always delivered
  // to THIS thread — the one blocked in read_frame, where it must land to
  // interrupt the read.
  sigset_t term_set;
  sigemptyset(&term_set);
  sigaddset(&term_set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &term_set, nullptr);

  DetectionService service(options.service);
  FrameWriter writer(out);

  // Completion watcher: sweeps the pending list and streams each scan's
  // result the moment it turns terminal. wait_for on the front handle
  // paces the sweep without busy-spinning (and without ever blocking past
  // 20ms, so newly submitted scans and drain are noticed promptly).
  std::mutex pending_mutex;
  std::condition_variable pending_cv;
  std::deque<PendingScan> pending;
  bool reader_done = false;

  std::thread watcher([&] {
    for (;;) {
      std::optional<PendingScan> front;
      {
        std::unique_lock<std::mutex> lock(pending_mutex);
        if (pending.empty()) {
          if (reader_done) return;
          pending_cv.wait_for(lock, std::chrono::milliseconds(20));
          continue;
        }
        front = pending.front();
      }
      (void)front->handle.wait_for(0.02);
      // Sweep EVERY pending scan, not just the front: results stream in
      // completion order, which re-dispatching supervisors rely on.
      std::vector<PendingScan> finished;
      {
        const std::lock_guard<std::mutex> lock(pending_mutex);
        for (auto it = pending.begin(); it != pending.end();) {
          const ScanStatus status = it->handle.poll();
          if (status == ScanStatus::kDone || status == ScanStatus::kCancelled ||
              status == ScanStatus::kFailed || status == ScanStatus::kTimedOut ||
              status == ScanStatus::kShed) {
            finished.push_back(std::move(*it));
            it = pending.erase(it);
          } else {
            ++it;
          }
        }
      }
      for (const PendingScan& scan : finished) {
        if (!writer.write(wire::encode_result(
                outcome_to_result(scan.request_id, scan.handle.wait())))) {
          return;  // peer gone: nothing further can be delivered
        }
      }
    }
  });

  pthread_sigmask(SIG_UNBLOCK, &term_set, nullptr);

  std::int64_t accepted = 0;
  int exit_code = 0;
  std::vector<std::uint8_t> payload;
  try {
    while (!g_drain.load(std::memory_order_relaxed) && !writer.dead() &&
           wire::read_frame(in, payload, max_frame, &g_drain)) {
      std::uint64_t request_id = 0;
      try {
        const std::uint32_t record = wire::peek_record(payload);
        if (record == wire::kPingRecord) {
          (void)writer.write(wire::encode_pong(wire::decode_ping(payload)));
          continue;
        }
        wire::WireScanRequest request = wire::decode_request(payload);
        request_id = request.request_id;
        if (options.enable_test_hazards) {
          if (request.method == "__crash__") std::abort();
          if (request.method == "__garble__") garble_and_die(out);
          if (request.method == "__wedge__") {
            // Wedge the FRAME-READING thread: pings go unanswered, which is
            // exactly the heartbeat-silence failure a supervisor must kill.
            for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
          }
        }
        DetectorPtr detector = make_wire_detector(request.method, options.steps);
        if (detector == nullptr) {
          throw wire::WireError("unknown method '" + request.method + "'");
        }
        ScanRequest submit;
        submit.model_ref = std::move(request.model_ref);
        submit.detector = std::move(detector);
        submit.probe_key = request.probe_key;
        submit.options = request.options;
        PendingScan scan;
        scan.request_id = request_id;
        scan.handle = service.submit(std::move(submit));
        {
          const std::lock_guard<std::mutex> lock(pending_mutex);
          pending.push_back(std::move(scan));
        }
        pending_cv.notify_one();
        ++accepted;
      } catch (const std::exception& error) {
        std::fprintf(stderr, "scan_worker: request rejected: %s\n", error.what());
        (void)writer.write(wire::encode_result(failed_result(request_id, error.what())));
      }
    }
  } catch (const wire::WireError& error) {
    // Stream-level corruption (truncated header/payload, oversized frame):
    // framing is lost, nothing further can be attributed to a request. The
    // in-flight scans still drain below so their results are not discarded.
    std::fprintf(stderr, "scan_worker: %s\n", error.what());
    exit_code = 1;
  }

  {
    const std::lock_guard<std::mutex> lock(pending_mutex);
    reader_done = true;
  }
  pending_cv.notify_one();
  watcher.join();
  if (writer.dead()) exit_code = 1;

  const ModelStore& models = service.model_store();
  std::fprintf(stderr,
               "scan_worker: done (%lld accepted) — model store %lld entries, %lld hits / "
               "%lld misses, %lld bytes resident; probe store %lld entries, %lld hits\n",
               static_cast<long long>(accepted), static_cast<long long>(models.size()),
               static_cast<long long>(models.hits()), static_cast<long long>(models.misses()),
               static_cast<long long>(models.bytes_resident()),
               static_cast<long long>(service.probe_store().size()),
               static_cast<long long>(service.probe_store().hits()));
  return exit_code;
}

}  // namespace usb
