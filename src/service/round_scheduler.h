// Weighted fair-share multi-queue for class-job rounds.
//
// The global cross-request scheduler behind DetectionService: every admitted
// scan registers one Job, and every schedulable stage of that scan (task
// construction, one refinement round of one class, a finalize) is enqueued
// as an opaque item on that job's FIFO. A small crew of dispatcher threads
// repeatedly picks the next item across ALL jobs by
//
//   1. highest priority (strict: a higher-priority job with pending items
//      always runs first),
//   2. then lowest virtual time (stride/fair-queueing: each job accrues
//      vtime = sum of its items' measured seconds divided by its weight, so
//      a K=43 scan and a K=4 scan at equal weight each get ~half the crew's
//      attention and the small scan finishes first),
//   3. then creation order (stable tiebreak).
//
// A job created mid-flight starts at the scheduler's virtual clock (the
// minimum vtime frontier observed so far), so a newcomer is served
// immediately without being able to starve jobs that already spent time.
// Work-stealing falls out of the design: dispatchers have no affinity, so
// whichever thread frees up next takes the globally most-deserving item
// regardless of which request it belongs to.
//
// Items are scheduled work, not numeric policy: WHICH item runs when (and on
// which thread) is explicitly allowed to vary run to run. Determinism of the
// scan reports is owned by the items themselves (see detection_service.h) —
// the scheduler only promises per-job FIFO order and that every enqueued
// item eventually runs (or is dropped via drop_queued_if_unstarted before
// the job's first item ever ran).
//
// Items may throw: an exception escaping an item is caught by the
// dispatcher and routed to the owning job's on_item_error handler
// (JobOptions), so one faulty request fails ONLY itself while the queue
// keeps draining every other job — the dispatcher crew never dies. A job
// armed without a handler gets its errors logged and dropped (the item is
// still charged to its vtime account).
//
// Timer queue: enqueue_after() parks an item with a not-before
// steady_clock time. Deferred items live in a side list; a dispatcher with
// no runnable work sleeps with wait_until on the earliest not-before (it
// never busy-waits and never holds a thread hostage for a sleeping item),
// and any dispatcher promotes every due item into its job's FIFO before
// picking. This is what the service's retry-with-backoff rides on.
// expedite() promotes a job's deferred items immediately (used on
// cancel/timeout so an aborting scan never waits out its own backoff), and
// shutdown promotes everything so the queue always drains.
//
// Heartbeats: each dispatcher publishes the item it is currently running
// (label, owning job's owner tag, start time) into a per-dispatcher slot —
// an inverted seqlock whose epoch is odd while an item is in flight. The
// service's watchdog samples the slots wait-free via sample_in_flight() to
// detect hung items; a torn read is detected by re-checking the epoch and
// simply skipped (monitoring tolerates a missed sample).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "utils/thread_pool.h"

namespace usb {

class RoundScheduler {
 public:
  struct Config {
    /// Dispatcher threads = class-job items in flight at once.
    int workers = 1;
    /// Pool whose worker context every item adopts
    /// (ThreadPool::WorkerContext): nested tensor kernels spill onto this
    /// pool's idle workers exactly as they do inside a pool worker. Null
    /// runs items with the dispatcher thread's default context. Must
    /// outlive the scheduler.
    ThreadPool* kernel_pool = nullptr;
  };

  struct JobOptions {
    /// Strict priority: any pending item of a higher-priority job runs
    /// before every lower-priority item.
    int priority = 0;
    /// Fair-share weight among equal-priority jobs; vtime accrues at
    /// seconds / weight, so weight 2 receives twice the service rate.
    double weight = 1.0;
    /// Opaque owner tag published in heartbeats (the service uses the scan
    /// id) so a monitor can attribute an in-flight item to its request.
    std::uint64_t owner = 0;
    /// Routes an exception thrown by one of this job's items. Called on the
    /// dispatcher thread, outside the scheduler lock, after the item was
    /// charged to the job's vtime; must not throw. May enqueue further
    /// items or retire the job. Null logs-and-drops instead (the queue
    /// keeps draining either way — a throwing item never kills the crew).
    std::function<void(std::exception_ptr)> on_item_error;
  };

  /// A sampled in-flight item (see sample_in_flight).
  struct InFlightItem {
    const char* point = "";     // item label ("" when enqueued unlabeled)
    std::uint64_t owner = 0;    // owning job's JobOptions::owner tag
    double seconds = 0.0;       // time the item has been running
    int dispatcher = 0;         // slot index, stable identity for dedup
    std::int64_t start_ns = 0;  // steady_clock start, identity for dedup
  };

  /// One request's item queue plus its scheduling account. Opaque to
  /// callers; create with create_job, feed with enqueue, detach with
  /// retire_job.
  class Job {
   private:
    friend class RoundScheduler;
    struct Item {
      std::function<void()> fn;
      const char* label = nullptr;  // static storage; published in heartbeats
    };
    std::deque<Item> items;
    std::function<void(std::exception_ptr)> on_item_error;
    int priority = 0;
    double weight = 1.0;
    double vtime = 0.0;
    std::uint64_t sequence = 0;  // creation order, the final tiebreak
    std::uint64_t owner = 0;     // heartbeat attribution tag
    std::int64_t started = 0;    // items ever picked by a dispatcher
    bool retired = false;
  };
  using JobPtr = std::shared_ptr<Job>;

  explicit RoundScheduler(Config config);
  /// Joins the dispatchers after draining every pending item — deferred
  /// items included: shutdown promotes them immediately, so an item parked
  /// behind a long backoff still runs (and can observe its scan's cancel
  /// flag) instead of wedging the drain. (Callers that want a fast
  /// shutdown drop items first via drop_queued_if_unstarted or let their
  /// items observe a cancel flag and return immediately.)
  ~RoundScheduler();

  RoundScheduler(const RoundScheduler&) = delete;
  RoundScheduler& operator=(const RoundScheduler&) = delete;

  [[nodiscard]] int workers() const noexcept { return static_cast<int>(dispatchers_.size()); }

  /// Registers a new job at the current vtime frontier.
  [[nodiscard]] JobPtr create_job(JobOptions options);

  /// Appends an item to the job's FIFO. Items of one job may still run
  /// concurrently on several dispatchers when enqueued while a previous
  /// item is in flight — per-job mutual exclusion, where needed, is the
  /// caller's (the service serializes per-class chains by construction:
  /// a class's next round is enqueued only by the completion of its
  /// previous one). `label` (static storage, e.g. a string literal) names
  /// the item in heartbeats; null is fine.
  void enqueue(const JobPtr& job, std::function<void()> item, const char* label = nullptr);

  /// Parks an item until `delay_seconds` from now (steady_clock), then
  /// promotes it onto the job's FIFO like a normal enqueue. Dispatchers
  /// sleeping on an empty queue wake via wait_until — no thread ever
  /// sleep-waits holding a slot. A non-positive delay enqueues directly.
  void enqueue_after(const JobPtr& job, double delay_seconds, std::function<void()> item,
                     const char* label = nullptr);

  /// Promotes every deferred item of `job` to runnable now. Used by abort
  /// paths so a scan never waits out its own retry backoff to observe its
  /// cancel flag.
  void expedite(const JobPtr& job);

  /// Atomically drops every queued item of `job` IF no item of it has ever
  /// been picked, retiring the job; returns the number of items dropped
  /// (deferred items included; their closures are destroyed unrun).
  /// Returns -1 without touching the queue when an item already started —
  /// the caller must then let the in-flight chain drain cooperatively.
  /// This is what resolves cancel-while-queued immediately: the race
  /// against a dispatcher picking the first item is arbitrated by the
  /// scheduler lock.
  [[nodiscard]] std::int64_t drop_queued_if_unstarted(const JobPtr& job);

  /// Detaches a finished job from the scheduler. Pending items (there
  /// should be none — the service retires only terminal scans) are
  /// dropped, deferred ones included.
  void retire_job(const JobPtr& job);

  [[nodiscard]] std::int64_t items_executed() const;

  /// Items currently parked in the timer queue (not yet runnable).
  [[nodiscard]] std::int64_t items_deferred() const;

  /// Appends a snapshot of every item currently running on a dispatcher.
  /// Wait-free with respect to the dispatchers (seqlock read per slot; a
  /// slot caught mid-transition is skipped). Ages are measured against
  /// steady_clock at the time of the call.
  void sample_in_flight(std::vector<InFlightItem>& out) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Deferred {
    Clock::time_point not_before;
    JobPtr job;
    Job::Item item;
  };

  // Inverted seqlock: epoch is odd exactly while an item runs, and the
  // payload fields are written before the odd transition and left
  // untouched until the even one — so a reader that sees one odd epoch
  // twice around its field reads has a consistent sample.
  struct HeartbeatSlot {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<const char*> point{nullptr};
    std::atomic<std::uint64_t> owner{0};
    std::atomic<std::int64_t> start_ns{0};
  };

  void dispatcher_loop(int slot);
  [[nodiscard]] JobPtr pick_locked();
  /// Moves every due deferred item onto its job's FIFO. Lock held.
  void promote_due_locked(Clock::time_point now);
  void promote_all_deferred_locked();

  Config config_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::vector<JobPtr> jobs_;  // live jobs, creation order
  std::vector<Deferred> deferred_;
  double vclock_ = 0.0;  // min-vtime frontier; start point for new jobs
  std::uint64_t next_sequence_ = 0;
  std::int64_t items_executed_ = 0;
  bool shutting_down_ = false;
  std::unique_ptr<HeartbeatSlot[]> heartbeats_;
  std::vector<std::thread> dispatchers_;
};

}  // namespace usb
