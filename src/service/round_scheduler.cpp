#include "service/round_scheduler.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "utils/timer.h"

namespace usb {
namespace {

// Floor on an item's charged cost. Real refinement rounds cost milliseconds
// and dominate it; for near-zero items (drained cancels, trivial tests) the
// floor keeps vtime strictly increasing so equal-weight jobs alternate
// instead of resolving every pick by the sequence tiebreak (which would
// starve the younger job).
constexpr double kMinItemSeconds = 20e-6;

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RoundScheduler::RoundScheduler(Config config) : config_(config) {
  const int workers = std::max(1, config_.workers);
  heartbeats_ = std::make_unique<HeartbeatSlot[]>(static_cast<std::size_t>(workers));
  dispatchers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    dispatchers_.emplace_back([this, i] { dispatcher_loop(i); });
  }
}

RoundScheduler::~RoundScheduler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
    // Deferred items must still run (they hold completion bookkeeping for
    // their scans); promote them now rather than waiting out backoffs.
    promote_all_deferred_locked();
  }
  work_available_.notify_all();
  for (std::thread& dispatcher : dispatchers_) dispatcher.join();
}

RoundScheduler::JobPtr RoundScheduler::create_job(JobOptions options) {
  auto job = std::make_shared<Job>();
  job->priority = options.priority;
  job->weight = std::max(options.weight, 1e-9);
  job->owner = options.owner;
  job->on_item_error = std::move(options.on_item_error);
  const std::lock_guard<std::mutex> lock(mutex_);
  job->vtime = vclock_;
  job->sequence = next_sequence_++;
  jobs_.push_back(job);
  return job;
}

void RoundScheduler::enqueue(const JobPtr& job, std::function<void()> item, const char* label) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (job->retired) return;  // late enqueue on a detached job: drop
    job->items.push_back(Job::Item{std::move(item), label});
  }
  work_available_.notify_one();
}

void RoundScheduler::enqueue_after(const JobPtr& job, double delay_seconds,
                                   std::function<void()> item, const char* label) {
  if (delay_seconds <= 0.0) {
    enqueue(job, std::move(item), label);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (job->retired) return;
    if (shutting_down_) {
      // Drain mode: the item runs now (and observes its scan's flags)
      // instead of parking behind a timer nobody will honor.
      job->items.push_back(Job::Item{std::move(item), label});
    } else {
      const auto not_before =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(delay_seconds));
      deferred_.push_back(Deferred{not_before, job, Job::Item{std::move(item), label}});
    }
  }
  // Wake a sleeper either way: it recomputes the earliest not-before (or
  // finds the drained item runnable).
  work_available_.notify_one();
}

void RoundScheduler::expedite(const JobPtr& job) {
  bool promoted = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = deferred_.begin(); it != deferred_.end();) {
      if (it->job == job) {
        job->items.push_back(std::move(it->item));
        it = deferred_.erase(it);
        promoted = true;
      } else {
        ++it;
      }
    }
  }
  if (promoted) work_available_.notify_all();
}

std::int64_t RoundScheduler::drop_queued_if_unstarted(const JobPtr& job) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (job->started > 0) return -1;
  auto dropped = static_cast<std::int64_t>(job->items.size());
  job->items.clear();
  for (auto it = deferred_.begin(); it != deferred_.end();) {
    if (it->job == job) {
      ++dropped;
      it = deferred_.erase(it);
    } else {
      ++it;
    }
  }
  job->retired = true;
  jobs_.erase(std::remove(jobs_.begin(), jobs_.end(), job), jobs_.end());
  return dropped;
}

void RoundScheduler::retire_job(const JobPtr& job) {
  const std::lock_guard<std::mutex> lock(mutex_);
  job->items.clear();
  deferred_.erase(std::remove_if(deferred_.begin(), deferred_.end(),
                                 [&](const Deferred& d) { return d.job == job; }),
                  deferred_.end());
  job->retired = true;
  jobs_.erase(std::remove(jobs_.begin(), jobs_.end(), job), jobs_.end());
}

std::int64_t RoundScheduler::items_executed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return items_executed_;
}

std::int64_t RoundScheduler::items_deferred() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int64_t>(deferred_.size());
}

void RoundScheduler::sample_in_flight(std::vector<InFlightItem>& out) const {
  const std::int64_t now_ns = steady_now_ns();
  const int workers = static_cast<int>(dispatchers_.size());
  for (int i = 0; i < workers; ++i) {
    const HeartbeatSlot& slot = heartbeats_[i];
    const std::uint64_t before = slot.epoch.load(std::memory_order_acquire);
    if ((before & 1) == 0) continue;  // idle
    InFlightItem item;
    const char* point = slot.point.load(std::memory_order_relaxed);
    item.point = point != nullptr ? point : "";
    item.owner = slot.owner.load(std::memory_order_relaxed);
    item.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    const std::uint64_t after = slot.epoch.load(std::memory_order_acquire);
    if (after != before) continue;  // torn sample (item changed): skip
    item.seconds = static_cast<double>(now_ns - item.start_ns) * 1e-9;
    if (item.seconds < 0.0) item.seconds = 0.0;
    item.dispatcher = i;
    out.push_back(item);
  }
}

RoundScheduler::JobPtr RoundScheduler::pick_locked() {
  JobPtr best;
  for (const JobPtr& job : jobs_) {
    if (job->items.empty()) continue;
    if (best == nullptr || job->priority > best->priority ||
        (job->priority == best->priority &&
         (job->vtime < best->vtime ||
          (job->vtime == best->vtime && job->sequence < best->sequence)))) {
      best = job;
    }
  }
  return best;
}

void RoundScheduler::promote_due_locked(Clock::time_point now) {
  for (auto it = deferred_.begin(); it != deferred_.end();) {
    if (it->not_before <= now) {
      if (!it->job->retired) it->job->items.push_back(std::move(it->item));
      it = deferred_.erase(it);
    } else {
      ++it;
    }
  }
}

void RoundScheduler::promote_all_deferred_locked() {
  for (Deferred& deferred : deferred_) {
    if (!deferred.job->retired) deferred.job->items.push_back(std::move(deferred.item));
  }
  deferred_.clear();
}

void RoundScheduler::dispatcher_loop(int slot_index) {
  // Per-thread: every item this dispatcher runs executes inside the kernel
  // pool's worker context (see ThreadPool::WorkerContext).
  std::optional<ThreadPool::WorkerContext> context;
  if (config_.kernel_pool != nullptr) context.emplace(*config_.kernel_pool);
  HeartbeatSlot& heartbeat = heartbeats_[slot_index];

  for (;;) {
    Job::Item item;
    JobPtr job;  // shared ownership across the item: the job may be retired
                 // (and dropped from jobs_) by the item itself, e.g. a
                 // scan's last finalize — the account must outlive the run.
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (;;) {
        promote_due_locked(Clock::now());
        job = pick_locked();
        if (job != nullptr) break;
        if (shutting_down_) {
          if (deferred_.empty()) return;
          promote_all_deferred_locked();
          continue;
        }
        if (deferred_.empty()) {
          work_available_.wait(lock);
        } else {
          auto earliest = deferred_.front().not_before;
          for (const Deferred& deferred : deferred_) {
            earliest = std::min(earliest, deferred.not_before);
          }
          work_available_.wait_until(lock, earliest);
        }
      }
      item = std::move(job->items.front());
      job->items.pop_front();
      ++job->started;
      // Advance the frontier to the picked (minimum eligible) vtime so jobs
      // created from now on start here, not at 0.
      vclock_ = std::max(vclock_, job->vtime);
    }

    // Heartbeat: publish the item before running it (fields first, then the
    // odd epoch transition — see the seqlock note in the header).
    heartbeat.point.store(item.label, std::memory_order_relaxed);
    heartbeat.owner.store(job->owner, std::memory_order_relaxed);
    heartbeat.start_ns.store(steady_now_ns(), std::memory_order_relaxed);
    heartbeat.epoch.fetch_add(1, std::memory_order_release);

    const Timer timer;
    std::exception_ptr error;
    try {
      item.fn();
    } catch (...) {
      // Fault isolation: the throw belongs to ONE job. Charge the item,
      // then hand the exception to that job's handler — the other jobs'
      // queues keep draining and this dispatcher stays alive.
      error = std::current_exception();
    }
    const double cost = timer.seconds() + kMinItemSeconds;

    heartbeat.epoch.fetch_add(1, std::memory_order_release);

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job->vtime += cost / job->weight;
      ++items_executed_;
    }
    if (error != nullptr) {
      if (job->on_item_error) {
        job->on_item_error(error);
      } else {
        std::fprintf(stderr, "RoundScheduler: dropping exception from item of unhandled job\n");
      }
    }
    work_available_.notify_one();
  }
}

}  // namespace usb
