#include "service/round_scheduler.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "utils/timer.h"

namespace usb {
namespace {

// Floor on an item's charged cost. Real refinement rounds cost milliseconds
// and dominate it; for near-zero items (drained cancels, trivial tests) the
// floor keeps vtime strictly increasing so equal-weight jobs alternate
// instead of resolving every pick by the sequence tiebreak (which would
// starve the younger job).
constexpr double kMinItemSeconds = 20e-6;

}  // namespace

RoundScheduler::RoundScheduler(Config config) : config_(config) {
  const int workers = std::max(1, config_.workers);
  dispatchers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

RoundScheduler::~RoundScheduler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& dispatcher : dispatchers_) dispatcher.join();
}

RoundScheduler::JobPtr RoundScheduler::create_job(JobOptions options) {
  auto job = std::make_shared<Job>();
  job->priority = options.priority;
  job->weight = std::max(options.weight, 1e-9);
  job->on_item_error = std::move(options.on_item_error);
  const std::lock_guard<std::mutex> lock(mutex_);
  job->vtime = vclock_;
  job->sequence = next_sequence_++;
  jobs_.push_back(job);
  return job;
}

void RoundScheduler::enqueue(const JobPtr& job, std::function<void()> item) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (job->retired) return;  // late enqueue on a detached job: drop
    job->items.push_back(std::move(item));
  }
  work_available_.notify_one();
}

std::int64_t RoundScheduler::drop_queued_if_unstarted(const JobPtr& job) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (job->started > 0) return -1;
  const auto dropped = static_cast<std::int64_t>(job->items.size());
  job->items.clear();
  job->retired = true;
  jobs_.erase(std::remove(jobs_.begin(), jobs_.end(), job), jobs_.end());
  return dropped;
}

void RoundScheduler::retire_job(const JobPtr& job) {
  const std::lock_guard<std::mutex> lock(mutex_);
  job->items.clear();
  job->retired = true;
  jobs_.erase(std::remove(jobs_.begin(), jobs_.end(), job), jobs_.end());
}

std::int64_t RoundScheduler::items_executed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return items_executed_;
}

RoundScheduler::JobPtr RoundScheduler::pick_locked() {
  JobPtr best;
  for (const JobPtr& job : jobs_) {
    if (job->items.empty()) continue;
    if (best == nullptr || job->priority > best->priority ||
        (job->priority == best->priority &&
         (job->vtime < best->vtime ||
          (job->vtime == best->vtime && job->sequence < best->sequence)))) {
      best = job;
    }
  }
  return best;
}

void RoundScheduler::dispatcher_loop() {
  // Per-thread: every item this dispatcher runs executes inside the kernel
  // pool's worker context (see ThreadPool::WorkerContext).
  std::optional<ThreadPool::WorkerContext> context;
  if (config_.kernel_pool != nullptr) context.emplace(*config_.kernel_pool);

  for (;;) {
    std::function<void()> item;
    JobPtr job;  // shared ownership across the item: the job may be retired
                 // (and dropped from jobs_) by the item itself, e.g. a
                 // scan's last finalize — the account must outlive the run.
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutting_down_ || pick_locked() != nullptr; });
      job = pick_locked();
      if (job == nullptr) {
        if (shutting_down_) return;
        continue;
      }
      item = std::move(job->items.front());
      job->items.pop_front();
      ++job->started;
      // Advance the frontier to the picked (minimum eligible) vtime so jobs
      // created from now on start here, not at 0.
      vclock_ = std::max(vclock_, job->vtime);
    }

    const Timer timer;
    std::exception_ptr error;
    try {
      item();
    } catch (...) {
      // Fault isolation: the throw belongs to ONE job. Charge the item,
      // then hand the exception to that job's handler — the other jobs'
      // queues keep draining and this dispatcher stays alive.
      error = std::current_exception();
    }
    const double cost = timer.seconds() + kMinItemSeconds;

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job->vtime += cost / job->weight;
      ++items_executed_;
    }
    if (error != nullptr) {
      if (job->on_item_error) {
        job->on_item_error(error);
      } else {
        std::fprintf(stderr, "RoundScheduler: dropping exception from item of unhandled job\n");
      }
    }
    work_available_.notify_one();
  }
}

}  // namespace usb
