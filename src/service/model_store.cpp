#include "service/model_store.h"

#include <stdexcept>
#include <utility>

#include "nn/checkpoint.h"
#include "utils/fault_injection.h"
#include "utils/memory_budget.h"

namespace usb {

std::string ModelRef::key() const {
  if (zoo.has_value()) return "zoo:" + zoo->cache_key();
  return "ckpt:" + checkpoint_path;
}

ModelStore::~ModelStore() {
  if (resident_bytes_ > 0) {
    MemoryBudget::process().release(MemoryBudget::Category::kResidentModels, resident_bytes_);
  }
}

void ModelStore::touch_locked(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru_position);
  entry.lru_position = lru_.begin();
}

void ModelStore::evict_over_cap_locked() {
  if (options_.max_bytes <= 0) return;
  // Walk from the LRU tail, skipping pinned entries (use_count > 1 means a
  // scan outside the store still holds the model). If every resident entry
  // is pinned the cap is transiently exceeded — evicting a pinned model
  // would only hide the memory, not reclaim it, and would strand the next
  // same-key request on a reload while the bytes are still live.
  auto it = lru_.end();
  while (resident_bytes_ > options_.max_bytes && it != lru_.begin()) {
    --it;
    const auto found = entries_.find(*it);
    if (found == entries_.end()) continue;  // defensive; lru_ and map stay in sync
    if (found->second.data.use_count() > 1) continue;  // pinned by a scan
    resident_bytes_ -= found->second.bytes;
    MemoryBudget::process().release(MemoryBudget::Category::kResidentModels, found->second.bytes);
    ++evictions_;
    it = lru_.erase(it);
    entries_.erase(found);
  }
}

std::shared_ptr<const ModelData> ModelStore::lookup_or_claim(
    const std::string& key, std::shared_ptr<Materialization>& cell) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;  // the map resolved the key — no second load happens
    if (it->second.data != nullptr) {
      touch_locked(it->second);
      return it->second.data;
    }
    // Another thread is loading this key right now: wait on its cell
    // OUTSIDE the lock so unrelated keys keep flowing.
    const auto pending = it->second.pending;
    lock.unlock();
    return pending->future.get();  // rethrows the loader's failure
  }
  ++misses_;
  cell = std::make_shared<Materialization>();
  cell->future = cell->promise.get_future().share();
  Entry entry;
  entry.pending = cell;
  entries_.emplace(key, std::move(entry));
  return nullptr;
}

std::shared_ptr<const ModelData> ModelStore::resolve_pending(
    const std::string& key, const std::shared_ptr<Materialization>& cell,
    std::shared_ptr<const ModelData> data) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end() && it->second.pending == cell) {
      it->second.pending.reset();
      it->second.data = data;
      it->second.bytes = data->bytes;
      lru_.push_front(key);
      it->second.lru_position = lru_.begin();
      resident_bytes_ += it->second.bytes;
      MemoryBudget::process().add(MemoryBudget::Category::kResidentModels, it->second.bytes);
      evict_over_cap_locked();
    }
    // else: clear() dropped the pending entry mid-load — hand the model to
    // the waiters without re-inserting it.
  }
  cell->promise.set_value(data);
  return data;
}

void ModelStore::abandon_pending(const std::string& key,
                                 const std::shared_ptr<Materialization>& cell) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end() && it->second.pending == cell) entries_.erase(it);
  }
  cell->promise.set_exception(std::current_exception());
}

std::shared_ptr<const ModelData> ModelStore::get_or_create(const ModelRef& ref) {
  if (!ref.valid()) {
    throw std::invalid_argument(
        "ModelRef: exactly one of checkpoint_path / zoo spec must be set");
  }
  const std::string key = ref.key();
  std::shared_ptr<Materialization> cell;
  if (auto existing = lookup_or_claim(key, cell)) return existing;

  // The load runs unlocked: checkpoint I/O (or zoo training, which can take
  // seconds) must not convoy every concurrent lookup behind it.
  try {
    USB_FAULT_POINT("model_store.load");
    Network network = ref.zoo.has_value() ? std::move(train_or_load(*ref.zoo).network)
                                          : load_checkpoint(ref.checkpoint_path);
    // Residents never run forward themselves (scans clone them), but eval
    // mode + no parameter grads is the honest frozen-model state and what
    // every clone inherits anyway.
    network.set_training(false);
    auto data = std::make_shared<ModelData>(key, std::move(network));
    data->bytes = network_resident_bytes(data->network);
    return resolve_pending(key, cell, std::move(data));
  } catch (...) {
    abandon_pending(key, cell);
    throw;
  }
}

std::shared_ptr<const ModelData> ModelStore::put(const ModelRef& ref, Network network) {
  if (!ref.valid()) {
    throw std::invalid_argument(
        "ModelRef: exactly one of checkpoint_path / zoo spec must be set");
  }
  const std::string key = ref.key();
  std::shared_ptr<Materialization> cell;
  if (auto existing = lookup_or_claim(key, cell)) return existing;

  try {
    network.set_training(false);
    auto data = std::make_shared<ModelData>(key, std::move(network));
    data->bytes = network_resident_bytes(data->network);
    return resolve_pending(key, cell, std::move(data));
  } catch (...) {
    abandon_pending(key, cell);
    throw;
  }
}

void ModelStore::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  if (resident_bytes_ > 0) {
    MemoryBudget::process().release(MemoryBudget::Category::kResidentModels, resident_bytes_);
  }
  resident_bytes_ = 0;
}

std::int64_t ModelStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int64_t>(entries_.size());
}

std::int64_t ModelStore::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::int64_t ModelStore::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::int64_t ModelStore::evictions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::int64_t ModelStore::bytes_resident() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

}  // namespace usb
