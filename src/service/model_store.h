// Key-addressed store of resident victim models, the model-side equivalent
// of data/probe_store.h.
//
// A ScanRequest used to require a live Network* that the service deep-copied
// at submit(). The fleet-triage scenario — many requests scanning the same
// uploaded checkpoint, or a zoo population re-scanned by several methods —
// wants the opposite: requests name a model by REFERENCE (a zoo spec or a
// checkpoint path), the store loads it once, and every concurrent scan
// shares one immutable resident instance. Sharing is sound because every
// scan path only READS the reference model: per-class work runs on
// clone_network() copies (a const read of the source), and the USB shared
// prefix — the one stage that runs forward passes, which mutate per-instance
// forward caches — is built on a private temporary clone when the model is
// shared (StagedScan). Reports stay bit-identical to detect() on a live
// pointer: forward is a pure function of (weights, input) and clones copy
// every state tensor.
//
// The store mirrors ProbeStore's design decisions one for one:
//  - per-key materialization cells: N cold-key racers do ONE load; loading
//    (checkpoint I/O or zoo training) happens OUTSIDE the store lock;
//  - entries are shared_ptr<const ModelData>; a consumer holding the
//    pointer (a scan in flight) PINS the entry — LRU-by-bytes eviction
//    (ModelStoreOptions::max_bytes) skips pinned entries, so the cap can be
//    transiently exceeded but an in-scan model is never dropped;
//  - resident bytes register with MemoryBudget::Category::kResidentModels
//    and return to baseline when entries are evicted/cleared/destroyed;
//  - hit/miss/eviction counters with the same semantics (a racer waiting on
//    a cell counts as a hit: the map resolved its key).
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "exp/model_zoo.h"
#include "nn/models.h"

namespace usb {

/// Names a model without holding it live. Two forms:
///  - checkpoint: an on-disk file produced by save_checkpoint() — the
///    "uploaded model" form; the key is the path itself.
///  - zoo: a ModelCaseSpec resolved through exp/model_zoo's train_or_load()
///    (cache hit or deterministic training); the key is spec.cache_key().
struct ModelRef {
  std::string checkpoint_path;        // non-empty for the checkpoint form
  std::optional<ModelCaseSpec> zoo;   // engaged for the zoo form

  [[nodiscard]] static ModelRef from_checkpoint(std::string path) {
    ModelRef ref;
    ref.checkpoint_path = std::move(path);
    return ref;
  }
  [[nodiscard]] static ModelRef from_zoo(ModelCaseSpec spec) {
    ModelRef ref;
    ref.zoo = std::move(spec);
    return ref;
  }

  /// Exactly one form set.
  [[nodiscard]] bool valid() const noexcept {
    return checkpoint_path.empty() == zoo.has_value();
  }

  /// The store's map key: "ckpt:<path>" or "zoo:<cache_key>".
  [[nodiscard]] std::string key() const;
};

/// One resident model: loaded once, shared read-only by every scan that
/// names the key. The network is immutable by contract — consumers clone it
/// (clone_network reads) and never call forward on it directly.
struct ModelData {
  std::string key;
  Network network;
  /// network_resident_bytes at load; the unit of max_bytes accounting.
  std::int64_t bytes = 0;

  ModelData(std::string store_key, Network net)
      : key(std::move(store_key)), network(std::move(net)) {}
};

struct ModelStoreOptions {
  /// LRU-by-bytes cap on resident models; 0 (default) disables eviction.
  /// Entries held by in-flight consumers are pinned and never evicted.
  std::int64_t max_bytes = 0;
};

class ModelStore {
 public:
  explicit ModelStore(ModelStoreOptions options = {}) : options_(options) {}
  /// Releases the store's resident bytes from the process MemoryBudget.
  ~ModelStore();

  ModelStore(const ModelStore&) = delete;
  ModelStore& operator=(const ModelStore&) = delete;

  /// Returns the shared resident model for `ref`, loading it on first use
  /// (load_checkpoint for the checkpoint form, train_or_load for the zoo
  /// form). Loading happens OUTSIDE the store lock behind a per-key
  /// materialization cell: concurrent requests for the same cold key share
  /// one load (first caller loads and counts the miss; later ones wait on
  /// the cell's future and count hits), and lookups of other keys never
  /// convoy behind a load. Throws std::invalid_argument on an invalid ref;
  /// load failures propagate (and reach every waiter on the cell).
  [[nodiscard]] std::shared_ptr<const ModelData> get_or_create(const ModelRef& ref);

  /// Registers an externally held network under `ref`'s key (e.g. a model
  /// the caller just trained and wants served without a checkpoint round
  /// trip). First writer wins, matching the key-addressing contract.
  [[nodiscard]] std::shared_ptr<const ModelData> put(const ModelRef& ref, Network network);

  /// Drops the store's references; in-flight consumers keep their entries
  /// alive (and their bytes budgeted against kResidentModels is released
  /// here — the consumer's pin is not the store's accounting).
  void clear();

  [[nodiscard]] std::int64_t size() const;
  [[nodiscard]] std::int64_t hits() const;       // lookups served from the map
  [[nodiscard]] std::int64_t misses() const;     // lookups that loaded
  [[nodiscard]] std::int64_t evictions() const;  // entries dropped by the cap
  [[nodiscard]] std::int64_t bytes_resident() const;
  [[nodiscard]] std::int64_t max_bytes() const noexcept { return options_.max_bytes; }

 private:
  /// One in-flight load; same shape as ProbeStore::Materialization.
  struct Materialization {
    std::promise<std::shared_ptr<const ModelData>> promise;
    std::shared_future<std::shared_ptr<const ModelData>> future;
  };

  struct Entry {
    std::shared_ptr<const ModelData> data;  // null while loading
    std::int64_t bytes = 0;
    std::list<std::string>::iterator lru_position;  // valid once data is set
    std::shared_ptr<Materialization> pending;       // non-null while loading
  };

  /// Claims the key's cell (or returns the existing data / pending future's
  /// result). Returns nullptr in `out` when the caller must load.
  std::shared_ptr<const ModelData> lookup_or_claim(const std::string& key,
                                                   std::shared_ptr<Materialization>& cell);
  std::shared_ptr<const ModelData> resolve_pending(const std::string& key,
                                                   const std::shared_ptr<Materialization>& cell,
                                                   std::shared_ptr<const ModelData> data);
  void abandon_pending(const std::string& key, const std::shared_ptr<Materialization>& cell);
  void evict_over_cap_locked();
  void touch_locked(Entry& entry);

  ModelStoreOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  std::int64_t resident_bytes_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace usb
