// Structural Similarity (SSIM) with an analytic gradient.
//
// Alg. 2 of the paper optimizes  L = CE(f(x'), t) - SSIM(x, x') + |mask|_1 ,
// which requires dSSIM/dx'. There is no autograd tape in this library, so we
// differentiate the canonical Gaussian-window SSIM (Wang et al., 2004) in
// closed form. All local statistics are valid-window Gaussian filters; the
// gradient propagates through the three y-dependent maps
//   mu_y = G*y,  sigma_y^2 = G*y^2 - mu_y^2,  sigma_xy = G*(xy) - mu_x mu_y
// using the adjoint filter (full correlation). Verified against central
// finite differences in tests/metrics/ssim_test.cpp.
#pragma once

#include <cstdint>

#include "tensor/arena.h"
#include "tensor/tensor.h"

namespace usb {

struct SsimConfig {
  std::int64_t window = 11;
  double sigma = 1.5;
  // Stabilizers for dynamic range L = 1 (images in [0,1]).
  float c1 = 0.01F * 0.01F;
  float c2 = 0.03F * 0.03F;
};

/// Mean SSIM over all windows/channels/samples of x and y (both NCHW,
/// matching shapes, spatial size >= window).
[[nodiscard]] float ssim(const Tensor& x, const Tensor& y, const SsimConfig& config = {});

struct SsimResult {
  float value = 0.0F;
  Tensor grad_y;  // d mean-SSIM / dy, same shape as y
};

/// SSIM value plus its exact gradient with respect to y (x held constant).
[[nodiscard]] SsimResult ssim_with_gradient(const Tensor& x, const Tensor& y,
                                            const SsimConfig& config = {});

struct SsimGradRef {
  float value = 0.0F;
  const Tensor* grad_y = nullptr;  // arena-owned; valid until the arena resets
};

/// Arena-backed form of ssim_with_gradient: every intermediate map and the
/// gradient itself live in `arena`, so the USB refinement step's per-step
/// SSIM term allocates nothing in steady state. Bit-identical to the
/// value-returning form.
[[nodiscard]] SsimGradRef ssim_with_gradient(const Tensor& x, const Tensor& y, TensorArena& arena,
                                             const SsimConfig& config = {});

}  // namespace usb
