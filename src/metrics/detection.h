// Detection decision rules and population bookkeeping.
//
// All three detectors (NC, TABOR, USB) reduce a model to one number per
// class: the L1 norm of the reverse-engineered trigger mask for that class.
// A backdoored class is a LOW-side outlier (the shortcut needs a smaller
// perturbation). Following Neural Cleanse, outliers are scored with the
// Median Absolute Deviation: anomaly(k) = |v_k - median| / (1.4826 * MAD),
// flagged when anomaly > threshold and v_k < median.
//
// Paper metrics (Section 4.1):
//  - Model detection: clean vs backdoored verdict per model.
//  - Target class detection: Correct (exactly the true target), Correct Set
//    (true target among several flagged), Wrong (flagged but true target
//    missing).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace usb {

/// Median of a copy of `values` (empty -> 0).
[[nodiscard]] double median(std::span<const double> values);

/// MAD-based anomaly index per value (consistency constant 1.4826).
[[nodiscard]] std::vector<double> mad_anomaly_indices(std::span<const double> values);

struct DetectionVerdict {
  bool backdoored = false;
  std::vector<std::int64_t> flagged_classes;  // low-side outliers
  std::vector<double> norms;                  // per-class statistic
  std::vector<double> anomaly;                // per-class anomaly index
};

/// Applies the MAD rule to per-class norms. A class is flagged when its
/// norm is below `ratio_max * median` AND either its anomaly index exceeds
/// `threshold` or the norm is decisively small (below `decisive_ratio *
/// median`). The ratio conditions encode the paper's core observation
/// directly — a backdoor shortcut needs a *much* smaller perturbation — and
/// compensate for MAD's noisiness on as few as 10 classes (a 5x-below-
/// median trigger is a shortcut even when the other norms are spread out).
[[nodiscard]] DetectionVerdict decide_backdoor(std::span<const double> per_class_norms,
                                               double threshold = 2.0, double ratio_max = 0.45,
                                               double decisive_ratio = 0.22);

/// decide_backdoor over the FINITE entries of `per_class_norms` only.
/// Non-finite entries mark classes excluded from the reduction — quarantined
/// (numerically unstable) or unfinished (deadline/fault) classes, see
/// ClassScanState — and are peeled out BEFORE the median/MAD statistics so
/// one diverged class cannot shift the cutoff for every other class. Flagged
/// indices refer to the original positions; peeled entries keep their raw
/// (non-finite) norm and get a NaN anomaly index. With every entry finite
/// this is decide_backdoor exactly (bit-identical), which is what keeps
/// healthy reports unchanged.
[[nodiscard]] DetectionVerdict decide_backdoor_peeled(std::span<const double> per_class_norms,
                                                      double threshold = 2.0,
                                                      double ratio_max = 0.45,
                                                      double decisive_ratio = 0.22);

enum class TargetOutcome {
  kNotDetected,  // verdict says clean
  kCorrect,      // exactly the true target flagged
  kCorrectSet,   // several flagged, true target included
  kWrong         // flagged, but true target missing
};

/// Classifies a verdict on a model whose true backdoor target is
/// `true_target` (pass -1 for clean models; any flag is then a false
/// positive and the outcome is kWrong).
[[nodiscard]] TargetOutcome classify_target(const DetectionVerdict& verdict,
                                            std::int64_t true_target);

/// Aggregated counts for one table row (one population of trained models
/// evaluated by one method), in the paper's column layout.
struct CaseCounts {
  std::string method;
  std::int64_t detected_clean = 0;       // "Model Detection / Clean"
  std::int64_t detected_backdoored = 0;  // "Model Detection / Backdoored"
  std::int64_t correct = 0;              // "Target Class Detection / Correct"
  std::int64_t correct_set = 0;          // ".../ Correct Set"
  std::int64_t wrong = 0;                // ".../ Wrong"
  double l1_sum = 0.0;                   // reversed-trigger L1, summed
  std::int64_t l1_count = 0;

  /// Records one model's verdict. For backdoored populations `true_target`
  /// is the injected class; for clean populations pass -1.
  void record(const DetectionVerdict& verdict, std::int64_t true_target);

  [[nodiscard]] double mean_l1() const noexcept {
    return l1_count == 0 ? 0.0 : l1_sum / static_cast<double>(l1_count);
  }
};

}  // namespace usb
