#include "metrics/ssim.h"

#include <stdexcept>

#include "tensor/tensor_ops.h"

namespace usb {
namespace {

struct SsimMaps {
  Tensor mu_x, mu_y, sigma_x2, sigma_y2, sigma_xy;
};

SsimMaps compute_maps(const Tensor& x, const Tensor& y, const Tensor& kernel) {
  SsimMaps maps;
  maps.mu_x = filter2d_valid(x, kernel);
  maps.mu_y = filter2d_valid(y, kernel);

  Tensor x2 = x;
  x2 *= x;
  Tensor y2 = y;
  y2 *= y;
  Tensor xy = x;
  xy *= y;

  maps.sigma_x2 = filter2d_valid(x2, kernel);
  maps.sigma_y2 = filter2d_valid(y2, kernel);
  maps.sigma_xy = filter2d_valid(xy, kernel);
  for (std::int64_t i = 0; i < maps.mu_x.numel(); ++i) {
    maps.sigma_x2[i] -= maps.mu_x[i] * maps.mu_x[i];
    maps.sigma_y2[i] -= maps.mu_y[i] * maps.mu_y[i];
    maps.sigma_xy[i] -= maps.mu_x[i] * maps.mu_y[i];
  }
  return maps;
}

void check_inputs(const Tensor& x, const Tensor& y, const SsimConfig& config) {
  if (x.shape() != y.shape() || x.rank() != 4) {
    throw std::invalid_argument("ssim: x and y must be matching NCHW tensors");
  }
  if (x.dim(2) < config.window || x.dim(3) < config.window) {
    throw std::invalid_argument("ssim: image smaller than the SSIM window");
  }
}

}  // namespace

float ssim(const Tensor& x, const Tensor& y, const SsimConfig& config) {
  check_inputs(x, y, config);
  const Tensor kernel = gaussian_kernel(config.window, config.sigma);
  const SsimMaps maps = compute_maps(x, y, kernel);

  double total = 0.0;
  for (std::int64_t i = 0; i < maps.mu_x.numel(); ++i) {
    const float n1 = 2.0F * maps.mu_x[i] * maps.mu_y[i] + config.c1;
    const float n2 = 2.0F * maps.sigma_xy[i] + config.c2;
    const float d1 = maps.mu_x[i] * maps.mu_x[i] + maps.mu_y[i] * maps.mu_y[i] + config.c1;
    const float d2 = maps.sigma_x2[i] + maps.sigma_y2[i] + config.c2;
    total += static_cast<double>(n1) * n2 / (static_cast<double>(d1) * d2);
  }
  return static_cast<float>(total / static_cast<double>(maps.mu_x.numel()));
}

SsimResult ssim_with_gradient(const Tensor& x, const Tensor& y, const SsimConfig& config) {
  check_inputs(x, y, config);
  const Tensor kernel = gaussian_kernel(config.window, config.sigma);
  const SsimMaps maps = compute_maps(x, y, kernel);

  const std::int64_t map_numel = maps.mu_x.numel();
  const float upstream = 1.0F / static_cast<float>(map_numel);  // mean reduction

  // Per-map partial derivatives of the mean SSIM.
  Tensor g_mu(maps.mu_x.shape());     // effective gradient routed to G*y
  Tensor g_y2(maps.mu_x.shape());     // gradient routed to G*(y^2)
  Tensor g_xy(maps.mu_x.shape());     // gradient routed to G*(x*y)
  double total = 0.0;
  for (std::int64_t i = 0; i < map_numel; ++i) {
    const float mu_x = maps.mu_x[i];
    const float mu_y = maps.mu_y[i];
    const float n1 = 2.0F * mu_x * mu_y + config.c1;
    const float n2 = 2.0F * maps.sigma_xy[i] + config.c2;
    const float d1 = mu_x * mu_x + mu_y * mu_y + config.c1;
    const float d2 = maps.sigma_x2[i] + maps.sigma_y2[i] + config.c2;
    const float d1d2 = d1 * d2;
    total += static_cast<double>(n1) * n2 / d1d2;

    // Partials with the five maps treated as independent variables.
    const float ds_dmuy = (2.0F * mu_x * n2 * d1 - 2.0F * mu_y * n1 * n2) / (d1 * d1d2);
    const float ds_dsxy = 2.0F * n1 / d1d2;
    const float ds_dsy2 = -n1 * n2 / (d1d2 * d2);

    // Chain through sigma_xy = G*(xy) - mu_x mu_y and
    // sigma_y^2 = G*(y^2) - mu_y^2: both contribute back into the mu_y path.
    g_mu[i] = upstream * (ds_dmuy - mu_x * ds_dsxy - 2.0F * mu_y * ds_dsy2);
    g_xy[i] = upstream * ds_dsxy;
    g_y2[i] = upstream * ds_dsy2;
  }

  // Adjoint of the valid Gaussian filter scatters map gradients onto the
  // input grid; then d(y^2)/dy = 2y and d(xy)/dy = x close the chain.
  Tensor grad = filter2d_full_adjoint(g_mu, kernel);
  const Tensor back_y2 = filter2d_full_adjoint(g_y2, kernel);
  const Tensor back_xy = filter2d_full_adjoint(g_xy, kernel);
  for (std::int64_t i = 0; i < grad.numel(); ++i) {
    grad[i] += 2.0F * y[i] * back_y2[i] + x[i] * back_xy[i];
  }

  SsimResult result;
  result.value = static_cast<float>(total / static_cast<double>(map_numel));
  result.grad_y = std::move(grad);
  return result;
}

}  // namespace usb
