#include "metrics/ssim.h"

#include <stdexcept>

#include "tensor/elementwise.h"
#include "tensor/tensor_ops.h"

namespace usb {
namespace {

/// Arena-referencing view of the five local-statistics maps.
struct SsimMapRefs {
  const Tensor* mu_x = nullptr;
  const Tensor* mu_y = nullptr;
  Tensor* sigma_x2 = nullptr;
  Tensor* sigma_y2 = nullptr;
  Tensor* sigma_xy = nullptr;
};

SsimMapRefs compute_maps(const Tensor& x, const Tensor& y, const Tensor& kernel,
                         TensorArena& arena) {
  SsimMapRefs maps;
  Tensor& mu_x = arena.alloc(Shape{});
  Tensor& mu_y = arena.alloc(Shape{});
  filter2d_valid_into(x, kernel, mu_x);
  filter2d_valid_into(y, kernel, mu_y);
  maps.mu_x = &mu_x;
  maps.mu_y = &mu_y;

  Tensor& x2 = arena.alloc(x.shape());
  Tensor& y2 = arena.alloc(x.shape());
  Tensor& xy = arena.alloc(x.shape());
  ew::mul(x.raw(), x.raw(), x2.raw(), x.numel());
  ew::mul(y.raw(), y.raw(), y2.raw(), y.numel());
  ew::mul(x.raw(), y.raw(), xy.raw(), x.numel());

  Tensor& sigma_x2 = arena.alloc(Shape{});
  Tensor& sigma_y2 = arena.alloc(Shape{});
  Tensor& sigma_xy = arena.alloc(Shape{});
  filter2d_valid_into(x2, kernel, sigma_x2);
  filter2d_valid_into(y2, kernel, sigma_y2);
  filter2d_valid_into(xy, kernel, sigma_xy);
  for (std::int64_t i = 0; i < mu_x.numel(); ++i) {
    sigma_x2[i] -= mu_x[i] * mu_x[i];
    sigma_y2[i] -= mu_y[i] * mu_y[i];
    sigma_xy[i] -= mu_x[i] * mu_y[i];
  }
  maps.sigma_x2 = &sigma_x2;
  maps.sigma_y2 = &sigma_y2;
  maps.sigma_xy = &sigma_xy;
  return maps;
}

void check_inputs(const Tensor& x, const Tensor& y, const SsimConfig& config) {
  if (x.shape() != y.shape() || x.rank() != 4) {
    throw std::invalid_argument("ssim: x and y must be matching NCHW tensors");
  }
  if (x.dim(2) < config.window || x.dim(3) < config.window) {
    throw std::invalid_argument("ssim: image smaller than the SSIM window");
  }
}

}  // namespace

float ssim(const Tensor& x, const Tensor& y, const SsimConfig& config) {
  check_inputs(x, y, config);
  thread_local TensorArena scratch;
  const TensorArena::Scope scope(scratch);
  Tensor& kernel = scratch.alloc(Shape{config.window, config.window});
  gaussian_kernel_into(config.window, config.sigma, kernel);
  const SsimMapRefs maps = compute_maps(x, y, kernel, scratch);

  double total = 0.0;
  for (std::int64_t i = 0; i < maps.mu_x->numel(); ++i) {
    const float n1 = 2.0F * (*maps.mu_x)[i] * (*maps.mu_y)[i] + config.c1;
    const float n2 = 2.0F * (*maps.sigma_xy)[i] + config.c2;
    const float d1 = (*maps.mu_x)[i] * (*maps.mu_x)[i] + (*maps.mu_y)[i] * (*maps.mu_y)[i] +
                     config.c1;
    const float d2 = (*maps.sigma_x2)[i] + (*maps.sigma_y2)[i] + config.c2;
    total += static_cast<double>(n1) * n2 / (static_cast<double>(d1) * d2);
  }
  return static_cast<float>(total / static_cast<double>(maps.mu_x->numel()));
}

SsimGradRef ssim_with_gradient(const Tensor& x, const Tensor& y, TensorArena& arena,
                               const SsimConfig& config) {
  check_inputs(x, y, config);
  Tensor& kernel = arena.alloc(Shape{config.window, config.window});
  gaussian_kernel_into(config.window, config.sigma, kernel);
  const SsimMapRefs maps = compute_maps(x, y, kernel, arena);

  const std::int64_t map_numel = maps.mu_x->numel();
  const float upstream = 1.0F / static_cast<float>(map_numel);  // mean reduction

  // Per-map partial derivatives of the mean SSIM.
  Tensor& g_mu = arena.alloc(maps.mu_x->shape());  // effective gradient routed to G*y
  Tensor& g_y2 = arena.alloc(maps.mu_x->shape());  // gradient routed to G*(y^2)
  Tensor& g_xy = arena.alloc(maps.mu_x->shape());  // gradient routed to G*(x*y)
  double total = 0.0;
  for (std::int64_t i = 0; i < map_numel; ++i) {
    const float mu_x = (*maps.mu_x)[i];
    const float mu_y = (*maps.mu_y)[i];
    const float n1 = 2.0F * mu_x * mu_y + config.c1;
    const float n2 = 2.0F * (*maps.sigma_xy)[i] + config.c2;
    const float d1 = mu_x * mu_x + mu_y * mu_y + config.c1;
    const float d2 = (*maps.sigma_x2)[i] + (*maps.sigma_y2)[i] + config.c2;
    const float d1d2 = d1 * d2;
    total += static_cast<double>(n1) * n2 / d1d2;

    // Partials with the five maps treated as independent variables.
    const float ds_dmuy = (2.0F * mu_x * n2 * d1 - 2.0F * mu_y * n1 * n2) / (d1 * d1d2);
    const float ds_dsxy = 2.0F * n1 / d1d2;
    const float ds_dsy2 = -n1 * n2 / (d1d2 * d2);

    // Chain through sigma_xy = G*(xy) - mu_x mu_y and
    // sigma_y^2 = G*(y^2) - mu_y^2: both contribute back into the mu_y path.
    g_mu[i] = upstream * (ds_dmuy - mu_x * ds_dsxy - 2.0F * mu_y * ds_dsy2);
    g_xy[i] = upstream * ds_dsxy;
    g_y2[i] = upstream * ds_dsy2;
  }

  // Adjoint of the valid Gaussian filter scatters map gradients onto the
  // input grid; then d(y^2)/dy = 2y and d(xy)/dy = x close the chain.
  Tensor& grad = arena.alloc(Shape{});
  filter2d_full_adjoint_into(g_mu, kernel, grad);
  Tensor& back_y2 = arena.alloc(Shape{});
  Tensor& back_xy = arena.alloc(Shape{});
  filter2d_full_adjoint_into(g_y2, kernel, back_y2);
  filter2d_full_adjoint_into(g_xy, kernel, back_xy);
  for (std::int64_t i = 0; i < grad.numel(); ++i) {
    grad[i] += 2.0F * y[i] * back_y2[i] + x[i] * back_xy[i];
  }

  SsimGradRef result;
  result.value = static_cast<float>(total / static_cast<double>(map_numel));
  result.grad_y = &grad;
  return result;
}

SsimResult ssim_with_gradient(const Tensor& x, const Tensor& y, const SsimConfig& config) {
  thread_local TensorArena scratch;
  const TensorArena::Scope scope(scratch);
  const SsimGradRef ref = ssim_with_gradient(x, y, scratch, config);
  SsimResult result;
  result.value = ref.value;
  result.grad_y = *ref.grad_y;  // copy out of the scoped scratch
  return result;
}

}  // namespace usb
