#include "metrics/detection.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace usb {

double median(std::span<const double> values) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n % 2 == 1) return sorted[n / 2];
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

std::vector<double> mad_anomaly_indices(std::span<const double> values) {
  const double med = median(values);
  std::vector<double> deviations(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) deviations[i] = std::abs(values[i] - med);
  const double mad = median(deviations);
  // 1.4826 makes MAD consistent with the standard deviation under normality.
  const double scale = 1.4826 * mad;
  std::vector<double> anomaly(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    anomaly[i] = scale > 1e-12 ? std::abs(values[i] - med) / scale : 0.0;
  }
  return anomaly;
}

DetectionVerdict decide_backdoor(std::span<const double> per_class_norms, double threshold,
                                 double ratio_max, double decisive_ratio) {
  DetectionVerdict verdict;
  verdict.norms.assign(per_class_norms.begin(), per_class_norms.end());
  verdict.anomaly = mad_anomaly_indices(per_class_norms);
  const double med = median(per_class_norms);
  for (std::size_t k = 0; k < per_class_norms.size(); ++k) {
    // Backdoor shortcuts shrink the required perturbation: low-side only,
    // and decisively below the class median. The decisive-ratio clause
    // rescues true shortcuts when the remaining norms are too spread out
    // for MAD to score them.
    const bool well_below = per_class_norms[k] < ratio_max * med;
    const bool mad_outlier = verdict.anomaly[k] > threshold;
    const bool decisive = per_class_norms[k] < decisive_ratio * med;
    if (well_below && (mad_outlier || decisive)) {
      verdict.flagged_classes.push_back(static_cast<std::int64_t>(k));
    }
  }
  verdict.backdoored = !verdict.flagged_classes.empty();
  return verdict;
}

DetectionVerdict decide_backdoor_peeled(std::span<const double> per_class_norms,
                                        double threshold, double ratio_max,
                                        double decisive_ratio) {
  std::vector<double> finite;
  std::vector<std::size_t> original_index;
  finite.reserve(per_class_norms.size());
  for (std::size_t k = 0; k < per_class_norms.size(); ++k) {
    if (std::isfinite(per_class_norms[k])) {
      finite.push_back(per_class_norms[k]);
      original_index.push_back(k);
    }
  }
  if (finite.size() == per_class_norms.size()) {
    return decide_backdoor(per_class_norms, threshold, ratio_max, decisive_ratio);
  }
  const DetectionVerdict sub = decide_backdoor(finite, threshold, ratio_max, decisive_ratio);
  DetectionVerdict verdict;
  verdict.backdoored = sub.backdoored;
  verdict.norms.assign(per_class_norms.begin(), per_class_norms.end());
  verdict.anomaly.assign(per_class_norms.size(), std::numeric_limits<double>::quiet_NaN());
  for (std::size_t j = 0; j < finite.size(); ++j) {
    verdict.anomaly[original_index[j]] = sub.anomaly[j];
  }
  for (const std::int64_t flagged : sub.flagged_classes) {
    verdict.flagged_classes.push_back(
        static_cast<std::int64_t>(original_index[static_cast<std::size_t>(flagged)]));
  }
  return verdict;
}

TargetOutcome classify_target(const DetectionVerdict& verdict, std::int64_t true_target) {
  if (!verdict.backdoored) return TargetOutcome::kNotDetected;
  const bool contains_target =
      std::find(verdict.flagged_classes.begin(), verdict.flagged_classes.end(), true_target) !=
      verdict.flagged_classes.end();
  if (!contains_target) return TargetOutcome::kWrong;
  return verdict.flagged_classes.size() == 1 ? TargetOutcome::kCorrect
                                             : TargetOutcome::kCorrectSet;
}

void CaseCounts::record(const DetectionVerdict& verdict, std::int64_t true_target) {
  if (verdict.backdoored) {
    ++detected_backdoored;
  } else {
    ++detected_clean;
  }
  // Reversed-trigger norm statistic: for backdoored models the paper reports
  // the norm of the trigger recovered for the true target class; for clean
  // models the per-class average.
  if (true_target >= 0 && true_target < static_cast<std::int64_t>(verdict.norms.size())) {
    l1_sum += verdict.norms[static_cast<std::size_t>(true_target)];
    ++l1_count;
  } else if (!verdict.norms.empty()) {
    double mean = 0.0;
    for (const double v : verdict.norms) mean += v;
    l1_sum += mean / static_cast<double>(verdict.norms.size());
    ++l1_count;
  }
  switch (classify_target(verdict, true_target)) {
    case TargetOutcome::kNotDetected: break;
    case TargetOutcome::kCorrect: ++correct; break;
    case TargetOutcome::kCorrectSet: ++correct_set; break;
    case TargetOutcome::kWrong: ++wrong; break;
  }
}

}  // namespace usb
