#include "core/usb.h"

#include <algorithm>
#include <cmath>

#include "data/dataloader.h"
#include "defenses/masked_trigger.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"

namespace usb {
namespace {

// Per-class stream salts: sub-streams derived from the job's class root.
constexpr std::uint64_t kInitSalt = 0xab1a;
constexpr std::uint64_t kLoaderSalt = 0x05b;

}  // namespace

ClassScanScheduler UsbDetector::make_scheduler() const {
  ClassScanOptions options;
  options.mad_threshold = config_.mad_threshold;
  options.base_seed = config_.seed;
  options.pool = config_.scan_pool;
  return ClassScanScheduler(options);
}

UsbDetector::Decomposition UsbDetector::decompose_uap(const Tensor& uap) const {
  const std::int64_t channels = uap.dim(1);
  const std::int64_t size = uap.dim(2);
  const std::int64_t spatial = size * size;

  // Per-pixel magnitude profile (mean |v| across channels).
  std::vector<float> magnitude(static_cast<std::size_t>(spatial), 0.0F);
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t s = 0; s < spatial; ++s) {
      magnitude[static_cast<std::size_t>(s)] += std::abs(uap[c * spatial + s]);
    }
  }
  for (float& m : magnitude) m /= static_cast<float>(channels);

  // Normalizing quantile: pixels at/above it start with mask ~= 1, the rest
  // proportionally lower — the UAP's energy profile becomes the mask.
  std::vector<float> sorted = magnitude;
  std::sort(sorted.begin(), sorted.end());
  const auto q_index = static_cast<std::size_t>(
      std::clamp(config_.magnitude_quantile, 0.0, 1.0) *
      static_cast<double>(sorted.size() - 1));
  const float scale = std::max(sorted[q_index], 1e-6F);

  Decomposition out;
  out.mask = Tensor(Shape{size, size});
  for (std::int64_t s = 0; s < spatial; ++s) {
    out.mask[s] = std::clamp(magnitude[static_cast<std::size_t>(s)] / scale, 0.01F, 0.97F);
  }

  // Trigger init: the pixel value the UAP drives toward, around mid-gray
  // (images live in [0,1]; v is a signed displacement).
  out.pattern = Tensor(Shape{channels, size, size});
  for (std::int64_t i = 0; i < out.pattern.numel(); ++i) {
    out.pattern[i] = std::clamp(0.5F + uap[i], 0.02F, 0.98F);
  }
  return out;
}

TriggerEstimate UsbDetector::reverse_engineer_class(
    Network& model, const Dataset& probe, std::int64_t target_class,
    const std::optional<Tensor>& precomputed_uap) {
  const ClassScanScheduler scheduler = make_scheduler();
  const ProbeBatchCache cache = scheduler.make_cache(probe);
  return reverse_engineer_class(model, probe, scheduler.make_job(target_class, cache),
                                precomputed_uap);
}

TriggerEstimate UsbDetector::reverse_engineer_class(
    Network& model, const Dataset& probe, const ClassScanJob& job,
    const std::optional<Tensor>& precomputed_uap) {
  const std::int64_t target_class = job.target_class;
  model.set_training(false);
  model.set_param_grads_enabled(false);

  // ---- Alg. 1: targeted UAP (or the transferred one). ----
  Tensor uap(Shape{1, probe.spec().channels, probe.spec().image_size, probe.spec().image_size});
  if (precomputed_uap.has_value()) {
    uap = *precomputed_uap;
  } else if (!config_.random_init) {
    uap = targeted_uap(model, probe, target_class, config_.uap).perturbation;
  }

  // ---- Alg. 2: refine trigger x mask from the UAP decomposition. ----
  Rng init_rng(hash_combine(job.rng_seed, kInitSalt));
  MaskedTrigger trigger =
      config_.random_init && !precomputed_uap.has_value()
          ? MaskedTrigger(probe.spec().channels, probe.spec().image_size, init_rng, config_.lr)
          : [&] {
              const Decomposition init = decompose_uap(uap);
              return MaskedTrigger(init.mask, init.pattern, config_.lr);
            }();
  TargetedCrossEntropy ce;
  DataLoader loader(probe, config_.batch_size, /*shuffle=*/true,
                    hash_combine(job.rng_seed, kLoaderSalt));

  float last_loss = 0.0F;
  Batch batch;
  for (std::int64_t step = 0; step < config_.refine_steps; ++step) {
    if (!loader.next(batch)) {
      loader.new_epoch();
      if (!loader.next(batch)) break;
    }
    trigger.zero_grad();
    const Tensor blended = trigger.apply(batch.images);

    // CE(f(x'), t)
    const Tensor logits = model.forward(blended);
    const float ce_value = ce.forward(logits, target_class);
    Tensor dblended = model.backward(ce.backward());

    // -SSIM(x, x'): keep x' structurally close to the clean batch.
    const SsimResult ssim_result = ssim_with_gradient(batch.images, blended, config_.ssim);
    dblended.add_scaled(ssim_result.grad_y, -config_.ssim_weight);

    trigger.accumulate_from_output_grad(dblended, batch.images);
    if (config_.use_l1_term) trigger.add_mask_l1_grad(config_.l1_weight);
    trigger.step();

    last_loss = ce_value - config_.ssim_weight * ssim_result.value +
                (config_.use_l1_term
                     ? config_.l1_weight * static_cast<float>(trigger.mask_l1())
                     : 0.0F);
  }

  TriggerEstimate estimate;
  estimate.target_class = target_class;
  estimate.pattern = trigger.pattern();
  estimate.mask = trigger.mask();
  estimate.mask_l1 = trigger.mask_l1();
  estimate.final_loss = last_loss;
  estimate.fooling_rate = fooling_rate(model, *job.probe_cache, trigger, target_class);
  return estimate;
}

DetectionReport UsbDetector::detect(Network& model, const Dataset& probe) {
  return make_scheduler().run(
      name(), model, probe,
      [this](Network& clone, const Dataset& data, const ClassScanJob& job) {
        return reverse_engineer_class(clone, data, job);
      });
}

}  // namespace usb
