#include "core/usb.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "data/dataloader.h"
#include "defenses/masked_trigger.h"
#include "defenses/scan_plan.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"

namespace usb {
namespace {

// Per-class stream salts: sub-streams derived from the job's class root.
constexpr std::uint64_t kInitSalt = 0xab1a;
constexpr std::uint64_t kLoaderSalt = 0x05b;

/// The per-class USB pipeline in resumable form: the constructor runs
/// Alg. 1 (or adopts the transferred/shared UAP) and the Alg. 2
/// initialization; run_steps advances the refinement loop in slices whose
/// concatenation is bit-identical to one uninterrupted run (the loop body
/// never reads the step index, and all carried state — loader cursor, Adam
/// moments, last loss — lives here); finalize evaluates the fooling rate
/// over the scan's shared probe cache.
///
/// Every per-step tensor — the blended batch, the forward/backward chain,
/// the SSIM maps and gradient — lives in the task's TensorArena, reset at
/// each step boundary; together with the recycled loader batch and trigger
/// scratch, the steady-state step performs ZERO Tensor heap allocations
/// (asserted by tests/test_arena.cpp and the bench alloc-pressure entry).
class UsbRefineTask final : public ClassRefineTask {
 public:
  UsbRefineTask(const UsbDetector& detector, Network& model, const Dataset& probe,
                const ClassScanJob& job, const std::optional<Tensor>& precomputed_uap)
      : config_(detector.config()),
        model_(model),
        job_(job),
        loader_(probe, config_.batch_size, /*shuffle=*/true,
                hash_combine(job.rng_seed, kLoaderSalt)) {
    model_.set_training(false);
    model_.set_param_grads_enabled(false);
    const std::int64_t target_class = job_.target_class;

    // ---- Alg. 1: targeted UAP (or the transferred one). ----
    const auto* shared = dynamic_cast<const UsbScanShared*>(job_.shared);
    Tensor uap(Shape{1, probe.spec().channels, probe.spec().image_size, probe.spec().image_size});
    if (precomputed_uap.has_value()) {
      uap = *precomputed_uap;
    } else if (!config_.random_init) {
      uap = targeted_uap(model_, probe, target_class, config_.uap,
                         shared != nullptr ? &shared->prefix : nullptr, &arena_)
                .perturbation;
    }

    // ---- Alg. 2 init: trigger x mask from the UAP decomposition. ----
    Rng init_rng(hash_combine(job_.rng_seed, kInitSalt));
    if (config_.random_init && !precomputed_uap.has_value()) {
      trigger_.emplace(probe.spec().channels, probe.spec().image_size, init_rng, config_.lr);
    } else {
      const UsbDetector::Decomposition init = detector.decompose_uap(uap);
      trigger_.emplace(init.mask, init.pattern, config_.lr);
    }
  }

  std::int64_t run_steps(std::int64_t steps) override {
    if (exhausted_) return 0;
    std::int64_t ran = 0;
    while (ran < steps) {
      if (!loader_.next(batch_)) {
        loader_.new_epoch();
        if (!loader_.next(batch_)) {
          exhausted_ = true;
          break;
        }
      }
      arena_.reset();
      trigger_->zero_grad();
      const Tensor& blended = trigger_->apply_into(batch_.images, arena_);

      // CE(f(x'), t)
      const Tensor& logits = model_.forward_into(blended, arena_);
      const float ce_value = ce_.forward(logits, job_.target_class);
      Tensor& dblended = model_.backward_into(ce_.backward_into(arena_), arena_);

      // -SSIM(x, x'): keep x' structurally close to the clean batch.
      const SsimGradRef ssim_result =
          ssim_with_gradient(batch_.images, blended, arena_, config_.ssim);
      dblended.add_scaled(*ssim_result.grad_y, -config_.ssim_weight);

      trigger_->accumulate_from_output_grad(dblended, batch_.images);
      if (config_.use_l1_term) trigger_->add_mask_l1_grad(config_.l1_weight);
      trigger_->step();

      last_loss_ = ce_value - config_.ssim_weight * ssim_result.value +
                   (config_.use_l1_term
                        ? config_.l1_weight * static_cast<float>(trigger_->mask_l1())
                        : 0.0F);
      ++ran;
    }
    return ran;
  }

  [[nodiscard]] double current_mask_l1() const override { return trigger_->mask_l1(); }

  [[nodiscard]] TriggerEstimate finalize() override {
    return finalize_estimate(model_, job_, *trigger_, last_loss_, &arena_);
  }

 private:
  const UsbConfig& config_;
  Network& model_;
  const ClassScanJob job_;
  DataLoader loader_;
  TensorArena arena_;  // per-task slots, reset at step boundaries
  Batch batch_;        // recycled loader batch
  std::optional<MaskedTrigger> trigger_;
  TargetedCrossEntropy ce_;
  float last_loss_ = 0.0F;
  bool exhausted_ = false;
};

}  // namespace

ClassScanScheduler UsbDetector::make_scheduler() const {
  ClassScanOptions options;
  options.mad_threshold = config_.mad_threshold;
  options.base_seed = config_.seed;
  options.pool = config_.scan_pool;
  options.external_probe_cache = config_.shared_probe_cache;
  options.early_exit = config_.early_exit;
  return ClassScanScheduler(options);
}

ScanSharedBuilder UsbDetector::make_shared_builder() const {
  // The shared prefix only exists when Alg. 1 actually runs per class.
  if (!config_.share_prefix || config_.random_init) return nullptr;
  return [this](Network& reference, const Dataset& probe) {
    auto shared = std::make_shared<UsbScanShared>();
    shared->prefix =
        build_uap_scan_prefix(reference, probe, config_.uap, probe.spec().num_classes);
    return std::shared_ptr<const ScanSharedState>(std::move(shared));
  };
}

UsbDetector::Decomposition UsbDetector::decompose_uap(const Tensor& uap) const {
  const std::int64_t channels = uap.dim(1);
  const std::int64_t size = uap.dim(2);
  const std::int64_t spatial = size * size;

  // Per-pixel magnitude profile (mean |v| across channels).
  std::vector<float> magnitude(static_cast<std::size_t>(spatial), 0.0F);
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t s = 0; s < spatial; ++s) {
      magnitude[static_cast<std::size_t>(s)] += std::abs(uap[c * spatial + s]);
    }
  }
  for (float& m : magnitude) m /= static_cast<float>(channels);

  // Normalizing quantile: pixels at/above it start with mask ~= 1, the rest
  // proportionally lower — the UAP's energy profile becomes the mask.
  std::vector<float> sorted = magnitude;
  std::sort(sorted.begin(), sorted.end());
  const auto q_index = static_cast<std::size_t>(
      std::clamp(config_.magnitude_quantile, 0.0, 1.0) *
      static_cast<double>(sorted.size() - 1));
  const float scale = std::max(sorted[q_index], 1e-6F);

  Decomposition out;
  out.mask = Tensor(Shape{size, size});
  for (std::int64_t s = 0; s < spatial; ++s) {
    out.mask[s] = std::clamp(magnitude[static_cast<std::size_t>(s)] / scale, 0.01F, 0.97F);
  }

  // Trigger init: the pixel value the UAP drives toward, around mid-gray
  // (images live in [0,1]; v is a signed displacement).
  out.pattern = Tensor(Shape{channels, size, size});
  for (std::int64_t i = 0; i < out.pattern.numel(); ++i) {
    out.pattern[i] = std::clamp(0.5F + uap[i], 0.02F, 0.98F);
  }
  return out;
}

TriggerEstimate UsbDetector::reverse_engineer_class(
    Network& model, const Dataset& probe, std::int64_t target_class,
    const std::optional<Tensor>& precomputed_uap) {
  const ClassScanScheduler scheduler = make_scheduler();
  const ProbeBatchCache cache = scheduler.make_cache(probe);
  return reverse_engineer_class(model, probe, scheduler.make_job(target_class, cache),
                                precomputed_uap);
}

TriggerEstimate UsbDetector::reverse_engineer_class(
    Network& model, const Dataset& probe, const ClassScanJob& job,
    const std::optional<Tensor>& precomputed_uap) {
  UsbRefineTask task(*this, model, probe, job, precomputed_uap);
  (void)task.run_steps(config_.refine_steps);
  return task.finalize();
}

ScanPlan UsbDetector::plan() const {
  ScanPlan scan;
  scan.method = name();
  scan.options = make_scheduler().options();
  scan.total_steps = config_.refine_steps;
  scan.make_task = [this](Network& clone, const Dataset& data,
                          const ClassScanJob& job) -> std::unique_ptr<ClassRefineTask> {
    return std::make_unique<UsbRefineTask>(*this, clone, data, job, std::nullopt);
  };
  scan.shared_builder = make_shared_builder();
  return scan;
}

}  // namespace usb
