// Alg. 1 of the paper: targeted Universal Adversarial Perturbation.
//
// Iterates over the small clean set X, accumulating batched targeted
// DeepFool steps into a single perturbation v until a fraction theta of
// X + v is classified as the target class (paper default theta = 0.6).
// After each aggregation the perturbation is projected back onto an L2 ball
// ("update the perturbation under limitation", Alg. 1 line 7).
//
// For a backdoored model and the backdoor's target class, v converges in
// very few passes with a small norm, because the trigger shortcut is exactly
// such a universal direction — the core observation of the paper.
#pragma once

#include "core/deepfool.h"
#include "data/dataset.h"
#include "nn/models.h"

namespace usb {

struct TargetedUapConfig {
  double desired_rate = 0.6;  // theta
  std::int64_t max_passes = 4;
  std::int64_t batch_size = 32;
  /// Alg. 1 runs on the first `craft_size` probe images (the paper notes
  /// <1% of the training set suffices); <=0 uses the whole probe.
  std::int64_t craft_size = 128;
  /// L2 projection radius, scaled by sqrt(input numel) inside the algorithm
  /// so one value works across image geometries. <=0 disables projection.
  float l2_radius_per_pixel = 0.35F;
  DeepFoolConfig deepfool;
};

struct TargetedUapResult {
  Tensor perturbation;        // (1,C,H,W)
  double fooling_rate = 0.0;  // fraction of probe sent to the target
  std::int64_t passes = 0;
};

/// Crafts a targeted UAP for `target` over the probe set.
[[nodiscard]] TargetedUapResult targeted_uap(Network& model, const Dataset& probe,
                                             std::int64_t target,
                                             const TargetedUapConfig& config = {});

/// Fraction of probe images classified as `target` after adding v (clipped
/// to the valid range).
[[nodiscard]] double uap_fooling_rate(Network& model, const Dataset& probe, const Tensor& v,
                                      std::int64_t target);

}  // namespace usb
