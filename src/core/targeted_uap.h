// Alg. 1 of the paper: targeted Universal Adversarial Perturbation.
//
// Iterates over the small clean set X, accumulating batched targeted
// DeepFool steps into a single perturbation v until a fraction theta of
// X + v is classified as the target class (paper default theta = 0.6).
// After each aggregation the perturbation is projected back onto an L2 ball
// ("update the perturbation under limitation", Alg. 1 line 7).
//
// For a backdoored model and the backdoor's target class, v converges in
// very few passes with a small norm, because the trigger shortcut is exactly
// such a universal direction — the core observation of the paper.
#pragma once

#include "core/deepfool.h"
#include "data/dataset.h"
#include "data/probe_cache.h"
#include "nn/models.h"

namespace usb {

struct TargetedUapConfig {
  double desired_rate = 0.6;  // theta
  std::int64_t max_passes = 4;
  std::int64_t batch_size = 32;
  /// Alg. 1 runs on the first `craft_size` probe images (the paper notes
  /// <1% of the training set suffices); <=0 uses the whole probe.
  std::int64_t craft_size = 128;
  /// L2 projection radius, scaled by sqrt(input numel) inside the algorithm
  /// so one value works across image geometries. <=0 disables projection.
  float l2_radius_per_pixel = 0.35F;
  DeepFoolConfig deepfool;
};

struct TargetedUapResult {
  Tensor perturbation;        // (1,C,H,W)
  double fooling_rate = 0.0;  // fraction of probe sent to the target
  std::int64_t passes = 0;
};

/// Class-independent prefix of Alg. 1, built ONCE per multi-class scan on
/// the reference model and shared read-only by all K per-class jobs:
///
///  - `craft`: the craft-set batches. Alg. 1 iterates the same sequential,
///    unshuffled batches for every class and every pass; the cache replaces
///    K x passes DataLoader re-gathers (and the per-pass fooling-rate
///    loaders) with one materialization.
///  - the v = 0 warm start for the FIRST craft batch: at (pass 0, batch 0)
///    the perturbation is still exactly zero for every class, so DeepFool's
///    first forward, its argmax predictions, the current-prediction backward
///    and the per-class target backwards are computed once here (via the
///    full-depth PrefixActivationCache boundary — for pixel-space
///    perturbations the first perturbation-dependent point is the input
///    itself, so the perturbation-independent prefix is the whole clean
///    forward) instead of once per class.
///
/// Bit-identical to the unshared path: clones share the reference weights,
/// and eval-mode forward/backward are pure row-wise functions of
/// (weights, input) with a schedule-free accumulation order.
struct UapScanPrefix {
  ProbeBatchCache craft;                  // craft batches, config.batch_size
  Tensor clean_logits;                    // batch 0: f(x), v = 0
  std::vector<std::int64_t> clean_preds;  // batch 0: argmax rows
  Tensor grad_current;                    // batch 0: d(sum_n logit_{pred_n})/dx
  std::vector<Tensor> grad_target;        // batch 0, per class t: d(sum_n logit_t)/dx

  [[nodiscard]] bool has_warm_start() const noexcept { return !clean_preds.empty(); }
};

/// Builds the shared Alg. 1 prefix for a scan over `num_classes` candidate
/// classes. Runs the clean forward and num_classes + 1 backwards on `model`
/// (sequentially, before any per-class fan-out).
[[nodiscard]] UapScanPrefix build_uap_scan_prefix(Network& model, const Dataset& probe,
                                                  const TargetedUapConfig& config,
                                                  std::int64_t num_classes);

/// Crafts a targeted UAP for `target` over the probe set. When `prefix` is
/// given (a scan's shared Alg. 1 prefix), the craft batches come from its
/// cache and the first DeepFool call warm-starts from the cached clean
/// forward — bit-identical to the unshared path. `arena` (optional) hosts
/// all per-batch temporaries — the shifted batches, every DeepFool
/// iteration, the per-batch aggregation — under Scopes, so the whole Alg. 1
/// loop recycles a bounded slot set; without one a private arena is used.
[[nodiscard]] TargetedUapResult targeted_uap(Network& model, const Dataset& probe,
                                             std::int64_t target,
                                             const TargetedUapConfig& config = {},
                                             const UapScanPrefix* prefix = nullptr,
                                             TensorArena* arena = nullptr);

/// Fraction of probe images classified as `target` after adding v (clipped
/// to the valid range).
[[nodiscard]] double uap_fooling_rate(Network& model, const Dataset& probe, const Tensor& v,
                                      std::int64_t target);

/// Same, over pre-materialized batches. Bit-identical to the Dataset
/// overload for any batch size: eval-mode predictions are row-wise and the
/// GEMM core's per-element accumulation order is independent of the batch
/// partition. `arena` (optional) recycles the per-batch shifted inputs and
/// forwards.
[[nodiscard]] double uap_fooling_rate(Network& model, const ProbeBatchCache& batches,
                                      const Tensor& v, std::int64_t target,
                                      TensorArena* arena = nullptr);

}  // namespace usb
