#include "core/targeted_uap.h"
#include <algorithm>

#include <cmath>

#include "data/dataloader.h"
#include "nn/prefix_cache.h"
#include "tensor/tensor_ops.h"

namespace usb {
namespace {

/// Adds v (1,C,H,W) to every row of a batch, clipped to [0,1].
void add_uap_into(const Tensor& images, const Tensor& v, Tensor& out) {
  out.ensure_shape(images.shape());
  const std::int64_t batch = images.dim(0);
  const std::int64_t numel = v.numel();
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* src = images.raw() + n * numel;
    float* row = out.raw() + n * numel;
    for (std::int64_t i = 0; i < numel; ++i) {
      row[i] = std::clamp(src[i] + v[i], 0.0F, 1.0F);
    }
  }
}

Tensor add_uap(const Tensor& images, const Tensor& v) {
  Tensor out;
  add_uap_into(images, v, out);
  return out;
}

void project_l2(Tensor& v, float radius) {
  const float norm = v.l2_norm();
  if (norm > radius && norm > 0.0F) v *= radius / norm;
}

Dataset make_craft_set(const Dataset& probe, const TargetedUapConfig& config) {
  return config.craft_size > 0 ? probe.take(config.craft_size) : probe.take(probe.size());
}

}  // namespace

double uap_fooling_rate(Network& model, const Dataset& probe, const Tensor& v,
                        std::int64_t target) {
  return uap_fooling_rate(model, ProbeBatchCache(probe, 128), v, target);
}

double uap_fooling_rate(Network& model, const ProbeBatchCache& batches, const Tensor& v,
                        std::int64_t target, TensorArena* arena) {
  model.set_training(false);
  TensorArena private_arena;
  TensorArena& slots = arena != nullptr ? *arena : private_arena;
  std::int64_t hits = 0;
  for (const Batch& batch : batches.batches()) {
    const TensorArena::Scope batch_scope(slots);
    Tensor& shifted = slots.alloc(batch.images.shape());
    add_uap_into(batch.images, v, shifted);
    const Tensor& logits = model.forward_into(shifted, slots);
    for (const std::int64_t pred : argmax_rows(logits)) {
      if (pred == target) ++hits;
    }
  }
  return batches.total_samples() == 0
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(batches.total_samples());
}

UapScanPrefix build_uap_scan_prefix(Network& model, const Dataset& probe,
                                    const TargetedUapConfig& config, std::int64_t num_classes) {
  UapScanPrefix prefix;
  prefix.craft = ProbeBatchCache(make_craft_set(probe, config), config.batch_size);
  if (prefix.craft.batches().empty() || num_classes <= 0 || config.max_passes <= 0 ||
      config.deepfool.max_iterations <= 0) {
    return prefix;  // nothing to warm-start; the craft cache alone is shared
  }

  model.set_training(false);
  model.set_param_grads_enabled(false);
  const DatasetSpec& spec = probe.spec();
  const Batch& first = prefix.craft.batches().front();

  // The exact input of every class's first DeepFool call: x + v with v = 0
  // (the clamp matters only if probe images stray outside [0,1]).
  const Tensor zero(Shape{1, spec.channels, spec.image_size, spec.image_size});
  std::vector<Batch> warm_batches(1);
  warm_batches[0].images = add_uap(first.images, zero);

  // Full-depth boundary: pixel-space perturbations depend on the input
  // itself, so the whole clean forward is the shareable prefix.
  const PrefixActivationCache clean(model, warm_batches);
  prefix.clean_logits = clean.activation(0);
  prefix.clean_preds = clean.predictions(0);

  // The class-independent backward (one-hot current predictions) and the K
  // class backwards, all over the one cached forward (backward is
  // repeatable). All-rows selectors: rows already at a target are skipped by
  // DeepFool's update rule, so their gradient values are never read.
  const std::int64_t rows = first.images.dim(0);
  const std::int64_t classes = model.num_classes();
  Tensor selector(Shape{rows, classes});
  for (std::int64_t n = 0; n < rows; ++n) {
    selector[n * classes + prefix.clean_preds[static_cast<std::size_t>(n)]] = 1.0F;
  }
  prefix.grad_current = model.backward(selector);

  prefix.grad_target.resize(static_cast<std::size_t>(num_classes));
  for (std::int64_t t = 0; t < num_classes; ++t) {
    selector.fill(0.0F);
    for (std::int64_t n = 0; n < rows; ++n) selector[n * classes + t] = 1.0F;
    prefix.grad_target[static_cast<std::size_t>(t)] = model.backward(selector);
  }
  return prefix;
}

TargetedUapResult targeted_uap(Network& model, const Dataset& probe, std::int64_t target,
                               const TargetedUapConfig& config, const UapScanPrefix* prefix,
                               TensorArena* arena) {
  model.set_training(false);
  model.set_param_grads_enabled(false);
  TensorArena private_arena;
  TensorArena& slots = arena != nullptr ? *arena : private_arena;
  const TensorArena::Scope call_scope(slots);
  const DatasetSpec& spec = probe.spec();
  TargetedUapResult result;
  result.perturbation =
      Tensor(Shape{1, spec.channels, spec.image_size, spec.image_size});
  Tensor& v = result.perturbation;
  const float radius =
      config.l2_radius_per_pixel > 0.0F
          ? config.l2_radius_per_pixel * std::sqrt(static_cast<float>(spec.image_numel()))
          : 0.0F;

  // The craft batches are identical for every candidate class and every
  // pass (sequential, unshuffled); a scan materializes them once in the
  // shared prefix, a standalone call once here. Same batching as the
  // historical DataLoader loop, so the pass arithmetic is bit-identical.
  ProbeBatchCache local_craft;
  if (prefix == nullptr) {
    local_craft = ProbeBatchCache(make_craft_set(probe, config), config.batch_size);
  }
  const ProbeBatchCache& craft = prefix != nullptr ? prefix->craft : local_craft;

  for (std::int64_t pass = 0; pass < config.max_passes; ++pass) {
    result.passes = pass + 1;
    for (std::size_t b = 0; b < craft.batches().size(); ++b) {
      const Batch& batch = craft.batches()[b];
      const TensorArena::Scope batch_scope(slots);
      Tensor& shifted = slots.alloc(batch.images.shape());
      add_uap_into(batch.images, v, shifted);

      // (pass 0, batch 0) is the only point where v is still exactly zero —
      // the class-independent prefix of Alg. 1. Restart DeepFool from the
      // scan's cached clean forward instead of the pixels.
      DeepFoolWarmStart warm;
      const DeepFoolWarmStart* warm_ptr = nullptr;
      if (pass == 0 && b == 0 && prefix != nullptr && prefix->has_warm_start() &&
          target >= 0 && static_cast<std::size_t>(target) < prefix->grad_target.size()) {
        warm.logits = &prefix->clean_logits;
        warm.preds = &prefix->clean_preds;
        warm.grad_target = &prefix->grad_target[static_cast<std::size_t>(target)];
        warm.grad_current = &prefix->grad_current;
        warm_ptr = &warm;
      }

      // Batched Alg. 1 inner loop: the minimal per-sample perturbations that
      // send x_i + v to the target, averaged over the rows that still miss
      // it, become the aggregate update to v.
      const DeepFoolResult step = targeted_deepfool(model, shifted, target, config.deepfool,
                                                    warm_ptr, &slots);
      const std::int64_t batch_rows = shifted.dim(0);
      const std::int64_t numel = v.numel();
      std::int64_t active_rows = 0;
      Tensor& update = slots.zeros(v.shape());
      for (std::int64_t n = 0; n < batch_rows; ++n) {
        const float* pert = step.perturbation.raw() + n * numel;
        float row_norm = 0.0F;
        for (std::int64_t i = 0; i < numel; ++i) row_norm += pert[i] * pert[i];
        if (row_norm <= 0.0F) continue;  // already at target, untouched
        ++active_rows;
        for (std::int64_t i = 0; i < numel; ++i) update[i] += pert[i];
      }
      if (active_rows == 0) continue;
      update *= 1.0F / static_cast<float>(active_rows);
      v += update;
      if (radius > 0.0F) project_l2(v, radius);
    }
    result.fooling_rate = uap_fooling_rate(model, craft, v, target, &slots);
    if (result.fooling_rate >= config.desired_rate) break;
  }
  return result;
}

}  // namespace usb
