#include "core/targeted_uap.h"
#include <algorithm>

#include <cmath>

#include "data/dataloader.h"
#include "tensor/tensor_ops.h"

namespace usb {
namespace {

/// Adds v (1,C,H,W) to every row of a batch, clipped to [0,1].
Tensor add_uap(const Tensor& images, const Tensor& v) {
  Tensor out = images;
  const std::int64_t batch = images.dim(0);
  const std::int64_t numel = v.numel();
  for (std::int64_t n = 0; n < batch; ++n) {
    float* row = out.raw() + n * numel;
    for (std::int64_t i = 0; i < numel; ++i) {
      row[i] = std::clamp(row[i] + v[i], 0.0F, 1.0F);
    }
  }
  return out;
}

void project_l2(Tensor& v, float radius) {
  const float norm = v.l2_norm();
  if (norm > radius && norm > 0.0F) v *= radius / norm;
}

}  // namespace

double uap_fooling_rate(Network& model, const Dataset& probe, const Tensor& v,
                        std::int64_t target) {
  model.set_training(false);
  DataLoader loader(probe, 128, /*shuffle=*/false, /*seed=*/0);
  Batch batch;
  std::int64_t hits = 0;
  std::int64_t total = 0;
  while (loader.next(batch)) {
    const Tensor logits = model.forward(add_uap(batch.images, v));
    for (const std::int64_t pred : argmax_rows(logits)) {
      if (pred == target) ++hits;
      ++total;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
}

TargetedUapResult targeted_uap(Network& model, const Dataset& probe, std::int64_t target,
                               const TargetedUapConfig& config) {
  model.set_training(false);
  model.set_param_grads_enabled(false);
  const Dataset craft_set =
      config.craft_size > 0 ? probe.take(config.craft_size) : probe.take(probe.size());
  const DatasetSpec& spec = probe.spec();
  TargetedUapResult result;
  result.perturbation =
      Tensor(Shape{1, spec.channels, spec.image_size, spec.image_size});
  Tensor& v = result.perturbation;
  const float radius =
      config.l2_radius_per_pixel > 0.0F
          ? config.l2_radius_per_pixel * std::sqrt(static_cast<float>(spec.image_numel()))
          : 0.0F;

  DataLoader loader(craft_set, config.batch_size, /*shuffle=*/false, /*seed=*/0);
  for (std::int64_t pass = 0; pass < config.max_passes; ++pass) {
    result.passes = pass + 1;
    loader.new_epoch();
    Batch batch;
    while (loader.next(batch)) {
      const Tensor shifted = add_uap(batch.images, v);

      // Batched Alg. 1 inner loop: the minimal per-sample perturbations that
      // send x_i + v to the target, averaged over the rows that still miss
      // it, become the aggregate update to v.
      const DeepFoolResult step = targeted_deepfool(model, shifted, target, config.deepfool);
      const std::int64_t batch_rows = shifted.dim(0);
      const std::int64_t numel = v.numel();
      std::int64_t active_rows = 0;
      Tensor update(v.shape());
      for (std::int64_t n = 0; n < batch_rows; ++n) {
        const float* pert = step.perturbation.raw() + n * numel;
        float row_norm = 0.0F;
        for (std::int64_t i = 0; i < numel; ++i) row_norm += pert[i] * pert[i];
        if (row_norm <= 0.0F) continue;  // already at target, untouched
        ++active_rows;
        for (std::int64_t i = 0; i < numel; ++i) update[i] += pert[i];
      }
      if (active_rows == 0) continue;
      update *= 1.0F / static_cast<float>(active_rows);
      v += update;
      if (radius > 0.0F) project_l2(v, radius);
    }
    result.fooling_rate = uap_fooling_rate(model, craft_set, v, target);
    if (result.fooling_rate >= config.desired_rate) break;
  }
  return result;
}

}  // namespace usb
