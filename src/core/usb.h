// USB: Universal Soldier for Backdoor detection — the paper's contribution.
//
// Pipeline per candidate class t (Sections 3.2-3.3):
//   1. Alg. 1  — craft a targeted UAP v toward t over a small clean probe
//                set (300 images for 32x32 data, 500 for the ImageNet
//                substitute).
//   2. Decompose v into an initial (trigger, mask): the mask from the UAP's
//                per-pixel magnitude profile, the trigger from the UAP
//                values ("initialize trigger and mask by v", Alg. 2 line 1).
//   3. Alg. 2  — refine with Adam(0.5, 0.9) under
//                L = CE(f(x'), t) - SSIM(x, x') + w_l1 * |mask|_1 ,
//                x' = x(1-mask) + trigger*mask.
//   4. The per-class mask-L1 statistics go through the same MAD outlier rule
//                as NC/TABOR.
//
// The UAP initialization is the differentiator: a random NC start contains
// none of an advanced trigger's structure, while the UAP already rides the
// backdoor shortcut (paper Fig. 1 and Appendix A.4).
#pragma once

#include <optional>

#include "core/targeted_uap.h"
#include "defenses/class_scan_scheduler.h"
#include "defenses/detector.h"
#include "metrics/ssim.h"

namespace usb {

struct UsbConfig {
  TargetedUapConfig uap;
  std::int64_t refine_steps = 120;  // paper: m = 500; scaled default
  std::int64_t batch_size = 16;
  float lr = 0.1F;                  // paper: lr = 0.1, Adam(0.5, 0.9)
  float ssim_weight = 1.0F;         // weight on -SSIM(x, x')
  float l1_weight = 0.02F;          // weight on |mask|_1
  bool use_l1_term = true;          // false reproduces the Fig. 5 ablation
  /// Ablation: skip Alg. 1 and start Alg. 2 from an NC-style random point.
  /// Isolates the value of the UAP initialization (DESIGN.md ablation 1).
  bool random_init = false;
  double mad_threshold = 2.0;
  /// Mask init: pixels whose UAP magnitude reaches this quantile get mask~1.
  double magnitude_quantile = 0.95;
  /// Root of the per-class RNG streams (Alg. 2 init / loader shuffling).
  std::uint64_t seed = 0xab1a7e0;
  /// Scan-pool override for tests/benches; nullptr means the global pool
  /// (sized from USB_THREADS).
  ThreadPool* scan_pool = nullptr;
  /// Share the class-independent Alg. 1 prefix (craft batches + the v = 0
  /// DeepFool warm start) across the K class jobs of detect(). Reports are
  /// bit-identical on or off; off recomputes the prefix per class.
  bool share_prefix = true;
  /// Prebuilt full-probe evaluation cache to reuse across detect() calls on
  /// the same probe set (see ClassScanOptions::external_probe_cache).
  const ProbeBatchCache* shared_probe_cache = nullptr;
  /// Early-exit round scheduling of the Alg. 2 refinement; bit-identical to
  /// the monolithic scan when disabled.
  EarlyExitOptions early_exit;
  SsimConfig ssim;
};

/// The Alg. 1 shared prefix a USB scan attaches to every class job.
struct UsbScanShared final : ScanSharedState {
  UapScanPrefix prefix;
};

class UsbDetector final : public Detector {
 public:
  explicit UsbDetector(UsbConfig config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "USB"; }
  /// The reified scan (see defenses/scan_plan.h): Alg. 1 + Alg. 2 per-class
  /// tasks plus the shared-prefix builder. detect() (inherited) runs it
  /// synchronously; DetectionService runs it with overrides.
  [[nodiscard]] ScanPlan plan() const override;

  /// Full per-class pipeline. If `precomputed_uap` is given, Alg. 1 is
  /// skipped — the paper's Section 4.4 transfer setting, where one UAP is
  /// reused across models of the same architecture. Seeds exactly as the
  /// parallel scan does, so results match detect() bit for bit.
  [[nodiscard]] TriggerEstimate reverse_engineer_class(
      Network& model, const Dataset& probe, std::int64_t target_class,
      const std::optional<Tensor>& precomputed_uap = std::nullopt);

  /// Scheduler job body: same pipeline against a shared probe cache.
  [[nodiscard]] TriggerEstimate reverse_engineer_class(
      Network& model, const Dataset& probe, const ClassScanJob& job,
      const std::optional<Tensor>& precomputed_uap = std::nullopt);

  /// Decomposes a UAP (1,C,H,W) into the Alg. 2 starting point.
  struct Decomposition {
    Tensor mask;     // (H,W) in [0,1]
    Tensor pattern;  // (C,H,W) in [0,1]
  };
  [[nodiscard]] Decomposition decompose_uap(const Tensor& uap) const;

  [[nodiscard]] const UsbConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] ClassScanScheduler make_scheduler() const;
  [[nodiscard]] ScanSharedBuilder make_shared_builder() const;

  UsbConfig config_;
};

}  // namespace usb
