// Targeted DeepFool (Moosavi-Dezfooli et al., CVPR 2016), the inner search
// of Alg. 1: the minimal perturbation moving a sample across the decision
// boundary into a chosen target class.
//
// For the current prediction c and target t, one step moves along
//   w = grad_x logit_t - grad_x logit_c
// by (logit_c - logit_t)/||w||^2, i.e. the exact boundary projection for a
// locally-linearized classifier. Both gradients come from repeated backward
// passes over one cached forward (backward is a pure function of the cache).
#pragma once

#include <cstdint>

#include "nn/models.h"
#include "tensor/arena.h"

namespace usb {

struct DeepFoolConfig {
  std::int64_t max_iterations = 6;
  float overshoot = 0.02F;  // pushes past the boundary, as in the original
  float clip_lo = 0.0F;     // valid image range
  float clip_hi = 1.0F;
};

/// Gradient of sum_n <logits_n, selector_n> with respect to the input batch;
/// `selector` is (N,num_classes). The model must already be in eval mode and
/// must have run forward(x) — this helper reruns forward itself for safety.
[[nodiscard]] Tensor input_gradient(Network& model, const Tensor& x, const Tensor& selector);

struct DeepFoolResult {
  Tensor perturbation;       // same shape as the input batch
  std::int64_t flipped = 0;  // rows that reached the target class
};

/// Precomputed products of the first iteration's forward/backward, used when
/// the input batch is CLASS-INDEPENDENT (Alg. 1's first craft batch, where
/// v = 0 for every candidate class): the forward, the argmax predictions and
/// the current-prediction backward are then identical across all K classes
/// of a scan, so one shared instance replaces K recomputations.
///
/// `grad_target` / `grad_current` are the input gradients of
/// sum_n logit_{target} and sum_n logit_{pred_n} over ALL rows. The
/// per-class selectors zero rows already classified as the target, but
/// eval-mode forwards keep batch rows independent (no cross-row coupling in
/// any layer), and the update rule skips those rows entirely — so sharing
/// the all-rows backwards is bit-identical to the per-class ones.
struct DeepFoolWarmStart {
  const Tensor* logits = nullptr;
  const std::vector<std::int64_t>* preds = nullptr;
  const Tensor* grad_target = nullptr;   // d(sum_n logit_target)/dx
  const Tensor* grad_current = nullptr;  // d(sum_n logit_{pred_n})/dx
};

/// Batched targeted DeepFool: for every row not yet classified as `target`,
/// accumulates boundary-projection steps until the row flips or the
/// iteration budget runs out. Rows already at the target get a zero
/// perturbation. When `warm` is given, iteration 0 consumes its cached
/// forward/backward products instead of recomputing them — bit-identical,
/// because eval-mode forwards are pure row-wise functions of (weights, x).
/// `arena` (optional) hosts every per-iteration temporary — forwards,
/// selectors, backwards — under a Scope, so repeated calls recycle the same
/// slots; without one the call uses a private arena (still allocation-free
/// across its own iterations).
[[nodiscard]] DeepFoolResult targeted_deepfool(Network& model, const Tensor& x,
                                               std::int64_t target,
                                               const DeepFoolConfig& config = {},
                                               const DeepFoolWarmStart* warm = nullptr,
                                               TensorArena* arena = nullptr);

}  // namespace usb
