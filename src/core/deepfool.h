// Targeted DeepFool (Moosavi-Dezfooli et al., CVPR 2016), the inner search
// of Alg. 1: the minimal perturbation moving a sample across the decision
// boundary into a chosen target class.
//
// For the current prediction c and target t, one step moves along
//   w = grad_x logit_t - grad_x logit_c
// by (logit_c - logit_t)/||w||^2, i.e. the exact boundary projection for a
// locally-linearized classifier. Both gradients come from repeated backward
// passes over one cached forward (backward is a pure function of the cache).
#pragma once

#include <cstdint>

#include "nn/models.h"

namespace usb {

struct DeepFoolConfig {
  std::int64_t max_iterations = 6;
  float overshoot = 0.02F;  // pushes past the boundary, as in the original
  float clip_lo = 0.0F;     // valid image range
  float clip_hi = 1.0F;
};

/// Gradient of sum_n <logits_n, selector_n> with respect to the input batch;
/// `selector` is (N,num_classes). The model must already be in eval mode and
/// must have run forward(x) — this helper reruns forward itself for safety.
[[nodiscard]] Tensor input_gradient(Network& model, const Tensor& x, const Tensor& selector);

struct DeepFoolResult {
  Tensor perturbation;       // same shape as the input batch
  std::int64_t flipped = 0;  // rows that reached the target class
};

/// Batched targeted DeepFool: for every row not yet classified as `target`,
/// accumulates boundary-projection steps until the row flips or the
/// iteration budget runs out. Rows already at the target get a zero
/// perturbation.
[[nodiscard]] DeepFoolResult targeted_deepfool(Network& model, const Tensor& x,
                                               std::int64_t target,
                                               const DeepFoolConfig& config = {});

}  // namespace usb
