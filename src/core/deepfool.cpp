#include "core/deepfool.h"
#include <algorithm>

#include <cmath>

#include "tensor/tensor_ops.h"

namespace usb {

Tensor input_gradient(Network& model, const Tensor& x, const Tensor& selector) {
  model.set_training(false);
  (void)model.forward(x);
  return model.backward(selector);
}

DeepFoolResult targeted_deepfool(Network& model, const Tensor& x, std::int64_t target,
                                 const DeepFoolConfig& config, const DeepFoolWarmStart* warm,
                                 TensorArena* arena) {
  model.set_training(false);
  model.set_param_grads_enabled(false);
  const std::int64_t batch = x.dim(0);
  const std::int64_t numel = x.numel() / batch;
  const std::int64_t classes = model.num_classes();

  // Temporaries (the adversarial batch, every forward/backward, the
  // selectors) live in the caller's arena when one is provided, else in a
  // private one; the Scope rewinds either on exit.
  TensorArena private_arena;
  TensorArena& slots = arena != nullptr ? *arena : private_arena;
  const TensorArena::Scope call_scope(slots);

  Tensor& x_adv = slots.alloc(x.shape());
  std::copy(x.raw(), x.raw() + x.numel(), x_adv.raw());
  DeepFoolResult result;
  result.perturbation = Tensor(x.shape());

  std::vector<bool> done(static_cast<std::size_t>(batch), false);
  for (std::int64_t iter = 0; iter < config.max_iterations; ++iter) {
    const TensorArena::Scope iter_scope(slots);
    // Iteration 0 of a class-independent batch restarts from the scan's
    // cached clean forward instead of re-entering at the pixels.
    const bool use_warm = warm != nullptr && iter == 0;
    const Tensor* logits_local = nullptr;
    if (!use_warm) logits_local = &model.forward_into(x_adv, slots);
    const Tensor& logits = use_warm ? *warm->logits : *logits_local;
    std::vector<std::int64_t> preds_local;
    if (!use_warm) preds_local = argmax_rows(logits);
    const std::vector<std::int64_t>& preds = use_warm ? *warm->preds : preds_local;

    // Selectors: one-hot target and one-hot current prediction per row, with
    // finished rows zeroed so they contribute nothing to either backward.
    Tensor& sel_target = slots.zeros(Shape{batch, classes});
    Tensor& sel_current = slots.zeros(Shape{batch, classes});
    bool any_active = false;
    for (std::int64_t n = 0; n < batch; ++n) {
      if (done[static_cast<std::size_t>(n)]) continue;
      if (preds[static_cast<std::size_t>(n)] == target) {
        done[static_cast<std::size_t>(n)] = true;
        continue;
      }
      any_active = true;
      sel_target[n * classes + target] = 1.0F;
      sel_current[n * classes + preds[static_cast<std::size_t>(n)]] = 1.0F;
    }
    if (!any_active) break;

    // Two backwards over the one cached forward (backward is repeatable).
    // The warm start supplies both precomputed: its all-rows gradients agree
    // bitwise with these selector backwards on every row the update reads.
    const Tensor* grad_target_local = nullptr;
    const Tensor* grad_current_local = nullptr;
    if (!use_warm) {
      grad_target_local = &model.backward_into(sel_target, slots);
      grad_current_local = &model.backward_into(sel_current, slots);
    }
    const Tensor& grad_target = use_warm ? *warm->grad_target : *grad_target_local;
    const Tensor& grad_current = use_warm ? *warm->grad_current : *grad_current_local;

    for (std::int64_t n = 0; n < batch; ++n) {
      if (done[static_cast<std::size_t>(n)]) continue;
      const std::int64_t pred = preds[static_cast<std::size_t>(n)];
      const float* gt = grad_target.raw() + n * numel;
      const float* gc = grad_current.raw() + n * numel;
      double w_sq = 0.0;
      for (std::int64_t i = 0; i < numel; ++i) {
        const double w = static_cast<double>(gt[i]) - gc[i];
        w_sq += w * w;
      }
      const float logit_gap = logits[n * classes + pred] - logits[n * classes + target];
      const double scale = (static_cast<double>(logit_gap) + 1e-4) / (w_sq + 1e-12);
      float* adv = x_adv.raw() + n * numel;
      float* pert = result.perturbation.raw() + n * numel;
      const float step = static_cast<float>(scale) * (1.0F + config.overshoot);
      for (std::int64_t i = 0; i < numel; ++i) {
        const float delta = step * (gt[i] - gc[i]);
        pert[i] += delta;
        adv[i] = std::clamp(adv[i] + delta, config.clip_lo, config.clip_hi);
      }
    }
  }

  // Final count of rows that reached the target.
  const Tensor& logits = model.forward_into(x_adv, slots);
  for (const std::int64_t pred : argmax_rows(logits)) {
    if (pred == target) ++result.flipped;
  }
  return result;
}

}  // namespace usb
