#include "utils/csv.h"

#include <cstdio>
#include <stdexcept>

namespace usb {

std::string csv_escape(const std::string& field) {
  const bool needs_quoting = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string CsvWriter::to_string() const {
  auto render = [](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) line += ',';
      line += csv_escape(cells[i]);
    }
    return line + "\n";
  };
  std::string out = render(header_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

void CsvWriter::save(const std::string& path) const {
  const std::string rendered = to_string();
  const std::string temp = path + ".tmp";
  std::FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr) throw std::runtime_error("csv: cannot open " + path);
  const std::size_t written = std::fwrite(rendered.data(), 1, rendered.size(), file);
  const int close_status = std::fclose(file);
  if (written != rendered.size() || close_status != 0) {
    std::remove(temp.c_str());
    throw std::runtime_error("csv: short write " + path);
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    throw std::runtime_error("csv: rename failed " + path);
  }
}

}  // namespace usb
