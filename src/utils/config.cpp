#include "utils/config.h"

#include <cstdlib>

namespace usb {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<std::int64_t>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value) return fallback;
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return value;
}

bool env_bool(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const std::string text(value);
  return text == "1" || text == "true" || text == "yes" || text == "on";
}

ExperimentScale ExperimentScale::from_env() {
  ExperimentScale scale;
  scale.models_per_case = env_int("USB_MODELS_PER_CASE", scale.models_per_case);
  scale.epochs = env_int("USB_EPOCHS", scale.epochs);
  scale.train_size = env_int("USB_TRAIN_SIZE", scale.train_size);
  scale.test_size = env_int("USB_TEST_SIZE", scale.test_size);
  scale.fast = env_bool("USB_FAST", scale.fast);
  scale.model_cache_dir = env_string("USB_MODEL_CACHE", scale.model_cache_dir);
  if (scale.fast) {
    scale.models_per_case = std::min<std::int64_t>(scale.models_per_case, 2);
    scale.epochs = std::min<std::int64_t>(scale.epochs, 2);
    scale.train_size = std::min<std::int64_t>(scale.train_size, 800);
    scale.test_size = std::min<std::int64_t>(scale.test_size, 200);
  }
  return scale;
}

}  // namespace usb
