// Environment-variable backed experiment knobs.
//
// The paper evaluates 240 trained models; the default repo configuration
// trains a scaled-down population so the full bench suite completes on a
// laptop-class CPU. Every scale knob is overridable through the environment
// so the paper-scale run is one `USB_MODELS_PER_CASE=50 ...` away.
#pragma once

#include <cstdint>
#include <string>

namespace usb {

/// Reads an integer env var with a fallback.
[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t fallback);

/// Reads a double env var with a fallback.
[[nodiscard]] double env_double(const char* name, double fallback);

/// Reads a string env var with a fallback.
[[nodiscard]] std::string env_string(const char* name, const std::string& fallback);

/// Reads a boolean env var ("1"/"true"/"yes" => true) with a fallback.
[[nodiscard]] bool env_bool(const char* name, bool fallback);

/// Global experiment scale configuration, resolved once from the environment.
struct ExperimentScale {
  /// Models trained per table row (paper: 50 for Tables 1/5, 15 elsewhere).
  std::int64_t models_per_case = 2;
  /// Training epochs per model.
  std::int64_t epochs = 4;
  /// Synthetic training-set size per dataset.
  std::int64_t train_size = 1600;
  /// Synthetic held-out test-set size.
  std::int64_t test_size = 400;
  /// If true, shrinks optimization iteration counts further for smoke runs.
  bool fast = false;
  /// Directory for cached trained checkpoints ("" disables caching).
  std::string model_cache_dir = ".usb_model_cache";

  /// Resolves from USB_MODELS_PER_CASE, USB_EPOCHS, USB_TRAIN_SIZE,
  /// USB_TEST_SIZE, USB_FAST, USB_MODEL_CACHE.
  [[nodiscard]] static ExperimentScale from_env();
};

}  // namespace usb
