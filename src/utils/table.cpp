#include "utils/table.h"

#include <algorithm>
#include <cstdio>

namespace usb {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string rule = "+";
  for (const std::size_t w : widths) rule += std::string(w + 2, '-') + "+";
  rule += "\n";

  std::string out = rule + render_row(header_) + rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

void Table::print() const {
  const std::string rendered = to_string();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

std::string format_double(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string format_percent(double ratio, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, ratio * 100.0);
  return buffer;
}

}  // namespace usb
