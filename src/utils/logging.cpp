#include "utils/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace usb {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_io_mutex;

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

LogLevel parse_log_level(std::string_view text) noexcept {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace detail {

void log_line(LogLevel level, std::string_view message) {
  const auto now = std::chrono::system_clock::now();
  const auto since_epoch = std::chrono::duration_cast<std::chrono::milliseconds>(
                               now.time_since_epoch())
                               .count();
  const std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[%s %lld.%03lld] %.*s\n", level_tag(level),
               static_cast<long long>(since_epoch / 1000),
               static_cast<long long>(since_epoch % 1000), static_cast<int>(message.size()),
               message.data());
}

}  // namespace detail
}  // namespace usb
