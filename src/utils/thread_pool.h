// Deterministic fork-join thread pool.
//
// Two parallelism primitives, both bit-identical for any thread count:
//
//  - `parallel_for` statically partitions an index range into contiguous
//    chunks. Each worker writes only to its own output slice (or a
//    per-worker accumulator that the caller reduces in fixed order), so
//    results do not depend on the schedule. This is the class-level fan-out
//    primitive (one chunk of classes per worker).
//
//  - `parallel_for_deterministic` executes a FIXED, size-derived list of
//    tiles with whatever threads happen to be free: the caller always
//    participates, idle workers of the same pool join in, and when the pool
//    is saturated (or has a single worker) every tile simply runs inline on
//    the caller. Because the tile decomposition depends only on the problem
//    size and each tile writes a disjoint output region with a fixed
//    internal accumulation order, ANY assignment of tiles to threads
//    produces bit-identical results. This is the intra-op primitive the
//    blocked GEMM core uses, and it is safe to call from inside a pool
//    worker (nested use never deadlocks — unclaimed tiles are drained by
//    the submitting thread itself).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace usb {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// Runs body(begin_i, end_i, worker_index) over a static partition of
  /// [0, count). Blocks until all chunks complete. Exceptions thrown by the
  /// body are rethrown on the calling thread (first one wins). Safe to call
  /// from several non-worker threads concurrently — each call tracks its own
  /// completion and its own first error, so overlapping scans submitted by
  /// different DetectionService executors share the workers without sharing
  /// failure state or wakeups.
  void parallel_for(std::int64_t count,
                    const std::function<void(std::int64_t, std::int64_t, int)>& body);

  /// Runs body(tile) for every tile in [0, num_tiles), assigning tiles to
  /// threads dynamically. The calling thread always participates, so the
  /// call completes even when every worker is busy (tiles then run inline)
  /// and is safe from inside a worker of this pool. Idle workers join in,
  /// which is how under-subscribed class scans (K < pool size, or a
  /// single-class reverse_engineer_class call) hand leftover cores to the
  /// tensor kernels. Bit-identical results require only that the CALLER's
  /// tile decomposition is size-derived and tiles write disjoint outputs;
  /// the schedule itself carries no numeric effect. Blocks until all tiles
  /// complete; the first exception thrown by a tile is rethrown here.
  void parallel_for_deterministic(std::int64_t num_tiles,
                                  const std::function<void(std::int64_t)>& body);

  /// Process-wide pool sized from USB_THREADS (default: hardware concurrency,
  /// capped at 16). Lives for the process lifetime.
  static ThreadPool& global();

  /// Adopts this pool's worker context on a foreign thread for the scope of
  /// the guard: nested free parallel_for calls run inline (exactly as they
  /// would inside a pool worker) and nested parallel_for_deterministic
  /// calls target THIS pool, spilling tensor-kernel tiles onto its idle
  /// workers. The service's round-dispatcher threads wrap every class-job
  /// item in one of these so a scan item executes identically whether it
  /// runs on a pool worker or a dispatcher thread — the routing is
  /// schedule-only and carries no numeric effect. Restores the previous
  /// context on destruction; safe to nest.
  class WorkerContext {
   public:
    explicit WorkerContext(ThreadPool& pool) noexcept;
    ~WorkerContext();

    WorkerContext(const WorkerContext&) = delete;
    WorkerContext& operator=(const WorkerContext&) = delete;

   private:
    ThreadPool* previous_pool_;
    bool previous_inside_;
  };

 private:
  /// One in-flight parallel_for call. Lives on the submitting thread's
  /// stack; `outstanding` and `error` are guarded by the pool mutex. The
  /// submitter cannot return (and destroy the job) before every chunk has
  /// decremented `outstanding` under the mutex, and no worker touches the
  /// job after its decrement, so the stack lifetime is safe even with
  /// several concurrent submitters.
  struct ForJob {
    std::int64_t outstanding = 0;
    std::exception_ptr error;
  };

  struct Task {
    const std::function<void(std::int64_t, std::int64_t, int)>* body = nullptr;
    std::int64_t begin = 0;
    std::int64_t end = 0;
    int worker_index = 0;
    ForJob* job = nullptr;
  };

  /// One in-flight parallel_for_deterministic call. Lives on the submitting
  /// thread's stack; `observers` (guarded by the pool mutex) counts workers
  /// currently holding a pointer to it so the submitter never returns (and
  /// destroys the job) while a worker might still dereference it.
  struct TileJob {
    const std::function<void(std::int64_t)>* body = nullptr;
    std::int64_t count = 0;
    std::atomic<std::int64_t> next{0};       // next unclaimed tile
    std::atomic<std::int64_t> completed{0};  // tiles fully executed (or skipped after error)
    std::atomic<bool> failed{false};
    std::exception_ptr error;  // guarded by the pool mutex
    int observers = 0;         // guarded by the pool mutex
  };

  void worker_loop();
  /// Claims and runs tiles of `job` until none remain. Does not block.
  void run_tiles(TileJob& job);
  [[nodiscard]] bool has_open_tile_job_locked() const;

  std::vector<std::thread> workers_;
  std::vector<Task> queue_;
  std::vector<TileJob*> tile_jobs_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  bool shutting_down_ = false;
};

/// Convenience wrapper over ThreadPool::global().parallel_for with a
/// (begin, end) body; worker index hidden.
void parallel_for(std::int64_t count, const std::function<void(std::int64_t, std::int64_t)>& body);

/// Tile-parallel helper for the tensor kernels: dispatches to the pool whose
/// worker the calling thread is (so kernels nested inside a class-scan job
/// share that scan's pool and can only soak up ITS idle workers), else to
/// ThreadPool::global(). See ThreadPool::parallel_for_deterministic for the
/// determinism contract.
void parallel_for_deterministic(std::int64_t num_tiles,
                                const std::function<void(std::int64_t)>& body);

}  // namespace usb
