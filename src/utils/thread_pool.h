// Deterministic fork-join thread pool.
//
// The only parallelism primitive in the library is `parallel_for`, which
// statically partitions an index range into contiguous chunks. Each worker
// writes only to its own output slice (or a per-worker accumulator that the
// caller reduces in fixed order), so results are bit-identical regardless of
// thread count. This keeps every experiment reproducible while still using
// all cores for conv/matmul-heavy training.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace usb {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// Runs body(begin_i, end_i, worker_index) over a static partition of
  /// [0, count). Blocks until all chunks complete. Exceptions thrown by the
  /// body are rethrown on the calling thread (first one wins).
  void parallel_for(std::int64_t count,
                    const std::function<void(std::int64_t, std::int64_t, int)>& body);

  /// Process-wide pool sized from USB_THREADS (default: hardware concurrency,
  /// capped at 16). Lives for the process lifetime.
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(std::int64_t, std::int64_t, int)>* body = nullptr;
    std::int64_t begin = 0;
    std::int64_t end = 0;
    int worker_index = 0;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::vector<Task> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  std::int64_t outstanding_ = 0;
  std::exception_ptr first_error_;
  bool shutting_down_ = false;
};

/// Convenience wrapper over ThreadPool::global().parallel_for with a
/// (begin, end) body; worker index hidden.
void parallel_for(std::int64_t count, const std::function<void(std::int64_t, std::int64_t)>& body);

}  // namespace usb
