#include "utils/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace usb {
namespace {
// Nested parallel_for calls (a worker body that itself parallelizes) run
// inline: with every worker blocked waiting on sub-chunks nobody would be
// left to execute them.
thread_local bool t_inside_worker = false;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 4;
  }
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (shutting_down_ && queue_.empty()) return;
      task = queue_.back();
      queue_.pop_back();
    }
    try {
      t_inside_worker = true;
      (*task.body)(task.begin, task.end, task.worker_index);
      t_inside_worker = false;
    } catch (...) {
      t_inside_worker = false;
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --outstanding_;
      if (outstanding_ == 0) work_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::int64_t count,
                              const std::function<void(std::int64_t, std::int64_t, int)>& body) {
  if (count <= 0) return;
  const auto num_workers = static_cast<std::int64_t>(workers_.size());
  // Small ranges and nested calls run inline: chunk dispatch costs more than
  // the work, and nesting would deadlock the pool.
  if (num_workers <= 1 || count < 2 || t_inside_worker) {
    if (num_workers <= 1 && !t_inside_worker) {
      // A 1-worker pool must behave exactly like its single worker thread:
      // nested parallel_for calls (e.g. tensor kernels inside a per-class
      // scan job) stay inline instead of escaping to the global pool.
      // Otherwise an injected ThreadPool(1) would not be the serial baseline
      // that USB_THREADS=1 is.
      t_inside_worker = true;
      try {
        body(0, count, 0);
      } catch (...) {
        t_inside_worker = false;
        throw;
      }
      t_inside_worker = false;
      return;
    }
    body(0, count, 0);
    return;
  }
  const std::int64_t chunks = std::min(count, num_workers);
  const std::int64_t base = count / chunks;
  const std::int64_t remainder = count % chunks;

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::int64_t begin = 0;
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t len = base + (c < remainder ? 1 : 0);
      queue_.push_back(Task{&body, begin, begin + len, static_cast<int>(c)});
      begin += len;
    }
    outstanding_ += chunks;
  }
  work_available_.notify_all();

  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return outstanding_ == 0; });
  if (first_error_) {
    const std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("USB_THREADS")) {
      const int parsed = std::atoi(env);
      if (parsed > 0) return parsed;
    }
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    return std::clamp(hw, 1, 16);
  }());
  return pool;
}

void parallel_for(std::int64_t count, const std::function<void(std::int64_t, std::int64_t)>& body) {
  ThreadPool::global().parallel_for(
      count, [&body](std::int64_t begin, std::int64_t end, int /*worker*/) { body(begin, end); });
}

}  // namespace usb
