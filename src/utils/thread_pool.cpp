#include "utils/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace usb {
namespace {
// Nested parallel_for calls (a worker body that itself parallelizes) run
// inline: with every worker blocked waiting on sub-chunks nobody would be
// left to execute them. parallel_for_deterministic has no such restriction
// (the caller drains its own tiles), but it must target the pool the
// current thread belongs to, which t_current_pool tracks.
thread_local bool t_inside_worker = false;
thread_local ThreadPool* t_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 4;
  }
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::has_open_tile_job_locked() const {
  for (const TileJob* job : tile_jobs_) {
    if (job->next.load(std::memory_order_relaxed) < job->count) return true;
  }
  return false;
}

void ThreadPool::run_tiles(TileJob& job) {
  for (;;) {
    const std::int64_t tile = job.next.fetch_add(1, std::memory_order_relaxed);
    if (tile >= job.count) break;
    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        (*job.body)(tile);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        job.failed.store(true, std::memory_order_relaxed);
        if (!job.error) job.error = std::current_exception();
      }
    }
    // Counted even for tiles skipped after a failure so `completed` always
    // reaches `count` and the submitter's wait terminates.
    job.completed.fetch_add(1, std::memory_order_release);
  }
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    Task task;
    TileJob* tile_job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] {
        return shutting_down_ || !queue_.empty() || has_open_tile_job_locked();
      });
      if (shutting_down_ && queue_.empty()) return;
      if (!queue_.empty()) {
        task = queue_.back();
        queue_.pop_back();
      } else {
        for (TileJob* job : tile_jobs_) {
          if (job->next.load(std::memory_order_relaxed) < job->count) {
            tile_job = job;
            ++job->observers;
            break;
          }
        }
        if (tile_job == nullptr) continue;  // tiles were claimed before we got the lock
      }
    }
    if (tile_job != nullptr) {
      t_inside_worker = true;
      run_tiles(*tile_job);
      t_inside_worker = false;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        --tile_job->observers;
      }
      work_done_.notify_all();
      continue;
    }
    try {
      t_inside_worker = true;
      (*task.body)(task.begin, task.end, task.worker_index);
      t_inside_worker = false;
    } catch (...) {
      t_inside_worker = false;
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!task.job->error) task.job->error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --task.job->outstanding;
      if (task.job->outstanding == 0) work_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::int64_t count,
                              const std::function<void(std::int64_t, std::int64_t, int)>& body) {
  if (count <= 0) return;
  const auto num_workers = static_cast<std::int64_t>(workers_.size());
  // Small ranges and nested calls run inline: chunk dispatch costs more than
  // the work, and nesting would deadlock the pool.
  if (num_workers <= 1 || count < 2 || t_inside_worker) {
    if (t_inside_worker) {
      // Already inside some pool's worker: keep that worker's context.
      body(0, count, 0);
      return;
    }
    // Inline on the calling thread, but still within THIS pool's context:
    // nested parallel_for calls (e.g. tensor kernels inside a per-class
    // scan job) stay inline instead of escaping to the global pool, and
    // nested parallel_for_deterministic calls target this pool — so an
    // injected ThreadPool(1) really is the serial baseline that
    // USB_THREADS=1 is, and a single-chunk call on a wider pool hands its
    // GEMM tiles to THAT pool's idle workers, not the global pool's.
    ThreadPool* const previous_pool = t_current_pool;
    t_inside_worker = true;
    t_current_pool = this;
    try {
      body(0, count, 0);
    } catch (...) {
      t_inside_worker = false;
      t_current_pool = previous_pool;
      throw;
    }
    t_inside_worker = false;
    t_current_pool = previous_pool;
    return;
  }
  const std::int64_t chunks = std::min(count, num_workers);
  const std::int64_t base = count / chunks;
  const std::int64_t remainder = count % chunks;

  ForJob job;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::int64_t begin = 0;
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t len = base + (c < remainder ? 1 : 0);
      queue_.push_back(Task{&body, begin, begin + len, static_cast<int>(c), &job});
      begin += len;
    }
    job.outstanding = chunks;
  }
  work_available_.notify_all();

  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [&job] { return job.outstanding == 0; });
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::parallel_for_deterministic(std::int64_t num_tiles,
                                            const std::function<void(std::int64_t)>& body) {
  if (num_tiles <= 0) return;
  // A 1-worker pool (the USB_THREADS=1 serial baseline) and trivial tile
  // counts run inline on the caller; same decomposition, same results.
  if (num_tiles == 1 || size() <= 1) {
    for (std::int64_t tile = 0; tile < num_tiles; ++tile) body(tile);
    return;
  }

  TileJob job;
  job.body = &body;
  job.count = num_tiles;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tile_jobs_.push_back(&job);
  }
  work_available_.notify_all();

  // The caller is a full participant: if no worker is free, it simply drains
  // every tile itself — nested calls from inside a saturated pool can never
  // deadlock.
  run_tiles(job);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    work_done_.wait(lock, [&job] {
      return job.completed.load(std::memory_order_acquire) == job.count && job.observers == 0;
    });
    tile_jobs_.erase(std::find(tile_jobs_.begin(), tile_jobs_.end(), &job));
    if (job.error) std::rethrow_exception(job.error);
  }
}

ThreadPool::WorkerContext::WorkerContext(ThreadPool& pool) noexcept
    : previous_pool_(t_current_pool), previous_inside_(t_inside_worker) {
  t_current_pool = &pool;
  t_inside_worker = true;
}

ThreadPool::WorkerContext::~WorkerContext() {
  t_current_pool = previous_pool_;
  t_inside_worker = previous_inside_;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("USB_THREADS")) {
      const int parsed = std::atoi(env);
      if (parsed > 0) return parsed;
    }
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    return std::clamp(hw, 1, 16);
  }());
  return pool;
}

void parallel_for(std::int64_t count, const std::function<void(std::int64_t, std::int64_t)>& body) {
  ThreadPool::global().parallel_for(
      count, [&body](std::int64_t begin, std::int64_t end, int /*worker*/) { body(begin, end); });
}

void parallel_for_deterministic(std::int64_t num_tiles,
                                const std::function<void(std::int64_t)>& body) {
  ThreadPool* pool = t_current_pool != nullptr ? t_current_pool : &ThreadPool::global();
  pool->parallel_for_deterministic(num_tiles, body);
}

}  // namespace usb
