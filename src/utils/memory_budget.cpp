#include "utils/memory_budget.h"

namespace usb {

MemoryBudget& MemoryBudget::process() {
  static MemoryBudget instance;
  return instance;
}

}  // namespace usb
