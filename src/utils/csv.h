// Minimal CSV writer (RFC-4180-style quoting) so detection reports and
// bench rows can feed external analysis/plotting without parsing the ASCII
// tables.
#pragma once

#include <string>
#include <vector>

namespace usb {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends one row; pads/truncates to the header width.
  void add_row(std::vector<std::string> row);

  /// Renders header + rows; fields containing commas/quotes/newlines are
  /// quoted with doubled inner quotes.
  [[nodiscard]] std::string to_string() const;

  /// Writes to `path` (atomic temp-file rename). Throws on I/O failure.
  void save(const std::string& path) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes a single CSV field per RFC 4180.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace usb
