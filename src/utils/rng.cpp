#include "utils/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace usb {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& lane : state_) lane = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

float Rng::uniform_float(float lo, float hi) noexcept {
  return static_cast<float>(uniform(lo, hi));
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Debiased modulo via rejection; range==0 means the full 2^64 span.
  if (range == 0) return static_cast<std::int64_t>(next_u64());
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              (std::numeric_limits<std::uint64_t>::max() % range);
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::vector<std::int64_t> Rng::sample_without_replacement(std::int64_t population,
                                                          std::int64_t count) {
  if (count > population || count < 0) {
    throw std::invalid_argument("sample_without_replacement: count out of range");
  }
  std::vector<std::int64_t> indices(static_cast<std::size_t>(population));
  for (std::int64_t i = 0; i < population; ++i) indices[static_cast<std::size_t>(i)] = i;
  shuffle(std::span<std::int64_t>(indices));
  indices.resize(static_cast<std::size_t>(count));
  return indices;
}

Rng Rng::fork() noexcept { return Rng(next_u64()); }

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  // boost::hash_combine extended to 64-bit with splitmix-style finalization.
  std::uint64_t h = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace usb
