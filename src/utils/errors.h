// Failure classification for scan stages.
//
// The retry layer in DetectionService distinguishes transient failures
// (worth re-running the same stage item after a backoff — the probe store
// hiccuped, an allocation failed under load, a detector saw a recoverable
// condition) from permanent ones (a bug or an invalid request, where a
// retry would deterministically fail again). Anything a stage throws that
// derives from ScanError carries that classification explicitly; detectors
// and stores that want a retry raise TransientError. Exceptions outside
// this hierarchy are permanent, with two exceptions made by the service:
// fault::InjectedFault (the fault registry models transient infrastructure
// faults) and std::bad_alloc (memory pressure is relieved by shedding and
// backoff, so an ENOMEM is worth retrying).
#pragma once

#include <stdexcept>
#include <string>

namespace usb {

/// Base class for scan-stage failures carrying a retry classification.
struct ScanError : std::runtime_error {
  ScanError(const std::string& what, bool transient_failure)
      : std::runtime_error(what), transient(transient_failure) {}

  /// Transient failures are re-enqueued with backoff while the scan has
  /// retry budget left (ScanOptions::max_retries); permanent failures
  /// resolve kFailed immediately.
  bool transient = false;
};

/// A failure worth retrying. Detectors raise this from construct/round
/// stages for recoverable conditions; the service raises it for probe
/// materialization failures.
struct TransientError : ScanError {
  explicit TransientError(const std::string& what) : ScanError(what, /*transient_failure=*/true) {}
};

}  // namespace usb
