#include "utils/timer.h"

#include <cmath>
#include <cstdio>

namespace usb {

std::string format_minutes_seconds(double seconds) {
  if (seconds < 0) seconds = 0;
  const auto total = static_cast<std::int64_t>(std::llround(seconds));
  const std::int64_t minutes = total / 60;
  const std::int64_t secs = total % 60;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld:%02lld", static_cast<long long>(minutes),
                static_cast<long long>(secs));
  return buffer;
}

}  // namespace usb
