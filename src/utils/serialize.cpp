#include "utils/serialize.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace usb {

void BinaryWriter::append(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

void BinaryWriter::write_u32(std::uint32_t value) { append(&value, sizeof(value)); }
void BinaryWriter::write_i64(std::int64_t value) { append(&value, sizeof(value)); }
void BinaryWriter::write_f32(float value) { append(&value, sizeof(value)); }
void BinaryWriter::write_f64(double value) { append(&value, sizeof(value)); }

void BinaryWriter::write_string(const std::string& value) {
  write_i64(static_cast<std::int64_t>(value.size()));
  append(value.data(), value.size());
}

void BinaryWriter::write_floats(std::span<const float> values) {
  write_i64(static_cast<std::int64_t>(values.size()));
  append(values.data(), values.size() * sizeof(float));
}

void BinaryWriter::write_f64s(std::span<const double> values) {
  write_i64(static_cast<std::int64_t>(values.size()));
  append(values.data(), values.size() * sizeof(double));
}

void BinaryWriter::write_i64s(std::span<const std::int64_t> values) {
  write_i64(static_cast<std::int64_t>(values.size()));
  append(values.data(), values.size() * sizeof(std::int64_t));
}

void BinaryWriter::save(const std::string& path) const {
  const std::string temp = path + ".tmp";
  {
    std::FILE* file = std::fopen(temp.c_str(), "wb");
    if (file == nullptr) throw std::runtime_error("cannot open for write: " + temp);
    const std::size_t written = std::fwrite(buffer_.data(), 1, buffer_.size(), file);
    const int close_status = std::fclose(file);
    if (written != buffer_.size() || close_status != 0) {
      std::remove(temp.c_str());
      throw std::runtime_error("short write: " + temp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::remove(temp.c_str());
    throw std::runtime_error("rename failed: " + path + " (" + ec.message() + ")");
  }
}

BinaryReader BinaryReader::from_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) throw std::runtime_error("cannot open for read: " + path);
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::vector<std::uint8_t> buffer(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(buffer.data(), 1, buffer.size(), file);
  std::fclose(file);
  if (read != buffer.size()) throw std::runtime_error("short read: " + path);
  return BinaryReader(std::move(buffer));
}

void BinaryReader::take(void* out, std::size_t size) {
  if (cursor_ + size > buffer_.size()) throw std::runtime_error("BinaryReader: truncated input");
  std::memcpy(out, buffer_.data() + cursor_, size);
  cursor_ += size;
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t value = 0;
  take(&value, sizeof(value));
  return value;
}

std::int64_t BinaryReader::read_i64() {
  std::int64_t value = 0;
  take(&value, sizeof(value));
  return value;
}

float BinaryReader::read_f32() {
  float value = 0;
  take(&value, sizeof(value));
  return value;
}

double BinaryReader::read_f64() {
  double value = 0;
  take(&value, sizeof(value));
  return value;
}

namespace {
// Validates a length prefix BEFORE the caller allocates size * unit bytes:
// a corrupt prefix (negative, or larger than the bytes actually present)
// must throw instead of driving a huge allocation or overflowing the
// size * unit multiplication.
void check_length_prefix(std::int64_t size, std::size_t unit, std::size_t remaining) {
  if (size < 0) throw std::runtime_error("BinaryReader: negative length prefix");
  if (static_cast<std::uint64_t>(size) > remaining / unit) {
    throw std::runtime_error("BinaryReader: length prefix " + std::to_string(size) +
                             " exceeds remaining input (" + std::to_string(remaining) + " bytes)");
  }
}
}  // namespace

std::string BinaryReader::read_string() {
  const std::int64_t size = read_i64();
  check_length_prefix(size, 1, remaining());
  std::string value(static_cast<std::size_t>(size), '\0');
  take(value.data(), value.size());
  return value;
}

std::vector<float> BinaryReader::read_floats() {
  const std::int64_t size = read_i64();
  check_length_prefix(size, sizeof(float), remaining());
  std::vector<float> values(static_cast<std::size_t>(size));
  take(values.data(), values.size() * sizeof(float));
  return values;
}

std::vector<double> BinaryReader::read_f64s() {
  const std::int64_t size = read_i64();
  check_length_prefix(size, sizeof(double), remaining());
  std::vector<double> values(static_cast<std::size_t>(size));
  take(values.data(), values.size() * sizeof(double));
  return values;
}

std::vector<std::int64_t> BinaryReader::read_i64s() {
  const std::int64_t size = read_i64();
  check_length_prefix(size, sizeof(std::int64_t), remaining());
  std::vector<std::int64_t> values(static_cast<std::size_t>(size));
  take(values.data(), values.size() * sizeof(std::int64_t));
  return values;
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

void ensure_directory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) throw std::runtime_error("cannot create directory: " + path + " (" + ec.message() + ")");
}

}  // namespace usb
