// Process-wide accounting of the large allocations the serving stack holds.
//
// Every subsystem that pins multi-megabyte buffers registers them here:
// ProbeStore resident datasets, the per-request model clones made at
// submit() and per class by StagedScan, ModelStore's shared resident
// networks, and TensorArena slot storage. The
// budget is pure bookkeeping — it never allocates, frees, or refuses
// anything itself. DetectionService reads it to drive policy:
// DetectionServiceConfig::max_resident_bytes turns the total into a shed
// watermark for queued scans and into byte backpressure for kBlock
// admission.
//
// All counters are relaxed atomics: registration is on hot-ish paths
// (arena growth, per-class clones) and the readers (shed checks, health
// snapshots) only need a monotonic-ish total, not a linearizable one.
#pragma once

#include <atomic>
#include <cstdint>

namespace usb {

class MemoryBudget {
 public:
  enum class Category : int {
    kProbeData = 0,       // ProbeStore resident datasets
    kModelClones = 1,     // per-request + per-class model copies
    kArenas = 2,          // TensorArena slot storage (scratch high-water)
    kResidentModels = 3,  // ModelStore resident (shared immutable) networks
  };
  static constexpr int kNumCategories = 4;

  MemoryBudget() = default;
  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// The process-wide instance every subsystem registers against.
  static MemoryBudget& process();

  void add(Category category, std::int64_t bytes) noexcept {
    if (bytes <= 0) return;
    by_category_[index(category)].fetch_add(bytes, std::memory_order_relaxed);
    const std::int64_t total = total_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::int64_t seen = high_water_.load(std::memory_order_relaxed);
    while (total > seen &&
           !high_water_.compare_exchange_weak(seen, total, std::memory_order_relaxed)) {
    }
  }

  void release(Category category, std::int64_t bytes) noexcept {
    if (bytes <= 0) return;
    by_category_[index(category)].fetch_sub(bytes, std::memory_order_relaxed);
    total_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Total bytes currently registered across all categories.
  [[nodiscard]] std::int64_t bytes() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t bytes(Category category) const noexcept {
    return by_category_[index(category)].load(std::memory_order_relaxed);
  }

  /// Highest total ever registered (never resets).
  [[nodiscard]] std::int64_t high_water_bytes() const noexcept {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  static int index(Category category) noexcept { return static_cast<int>(category); }

  std::atomic<std::int64_t> by_category_[kNumCategories]{};
  std::atomic<std::int64_t> total_{0};
  std::atomic<std::int64_t> high_water_{0};
};

}  // namespace usb
