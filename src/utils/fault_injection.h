// Compiled-in fault-injection hook points for the serving stack.
//
// Production-grade fault handling is only trustworthy if every failure path
// is actually executed, and the interesting paths (a refinement round that
// throws mid-scan, a probe materialization that dies, a statistic that
// diverges to NaN) cannot be reached from outside the process. So the hook
// points stay compiled in: each `USB_FAULT_POINT(name)` site is one relaxed
// atomic load when nothing is armed — cheap enough for stage boundaries the
// regression gate holds to <2% overhead — and tests arm the registry to
// throw, delay, or poison a statistic at the Nth hit of a named point.
//
// Scoping: hits can be tagged with the owning scan's id (FaultScope, set by
// the service around every stage it runs), and a spec armed with a nonzero
// `scope` triggers — and counts — only for that scan. This is how the tests
// fault one scan while a concurrent healthy scan on the same dispatchers
// stays untouched.
//
// The registry is process-global and thread-safe; tests must disarm_all()
// on teardown (gtest fixtures do) so suites stay independent.
//
// Point catalog (grep for USB_FAULT_POINT / USB_FAULT_NAN to verify):
//   scan.prepare / scan.clone / scan.construct / scan.round / scan.cutoff /
//   scan.retire / scan.finalize   stage boundaries of a running scan
//                                 (src/defenses/scan_plan.cpp)
//   probe_store.materialize       probe dataset generation
//   model_store.load              checkpoint/zoo model resolution
//   fleet.spawn                   WorkerFleet: one fork/exec attempt; a
//                                 throw is a failed spawn and backs off
//   fleet.route                   WorkerFleet: before a request frame is
//                                 written to a worker; a throw is treated
//                                 as worker death (EPIPE stand-in) — the
//                                 request takes a kill and re-dispatches
//   fleet.heartbeat               WorkerFleet: before a ping is sent; a
//                                 throw means the worker is unreachable,
//                                 same as heartbeat silence
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace usb::fault {

/// Thrown by a triggered kThrow fault point.
struct InjectedFault : std::runtime_error {
  explicit InjectedFault(const std::string& what) : std::runtime_error(what) {}
};

struct FaultSpec {
  enum class Kind {
    kThrow,   // USB_FAULT_POINT throws InjectedFault
    kDelay,   // USB_FAULT_POINT sleeps delay_seconds
    kNan,     // USB_FAULT_NAN returns true (the site substitutes a NaN)
    kEnomem,  // USB_FAULT_POINT throws std::bad_alloc (simulated ENOMEM)
  };
  Kind kind = Kind::kThrow;
  /// Trigger starting at hit #after_hits of the point (0-based, counted
  /// per arm(): re-arming resets the counter).
  std::int64_t after_hits = 0;
  /// How many consecutive hits trigger from there; < 0 = every later hit.
  std::int64_t count = 1;
  double delay_seconds = 0.0;  // kDelay
  /// kThrow message; empty derives "injected fault at <point>".
  std::string message;
  /// 0 matches any hit; nonzero matches (and counts) only hits whose
  /// thread's FaultScope carries this id.
  std::uint64_t scope = 0;
};

class FaultRegistry {
 public:
  static FaultRegistry& instance();

  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  /// Arms (or re-arms, resetting the hit counter) one point.
  void arm(const std::string& point, FaultSpec spec);
  void disarm(const std::string& point);
  void disarm_all();

  /// Hits counted for `point` since it was last armed (scope-filtered).
  /// 0 for points never armed.
  [[nodiscard]] std::int64_t hits(const std::string& point) const;

  /// USB_FAULT_POINT body. May throw InjectedFault or sleep; returns
  /// immediately when nothing is armed.
  void on_point(const char* point);

  /// USB_FAULT_NAN body: true when the site must substitute a NaN for the
  /// value it just computed.
  [[nodiscard]] bool poison(const char* point);

 private:
  FaultRegistry() = default;

  struct PointState {
    FaultSpec spec;
    std::int64_t hits = 0;
  };

  /// Counts the hit and copies the spec out when it triggers.
  [[nodiscard]] bool triggered(const char* point, FaultSpec& spec);

  mutable std::mutex mutex_;
  std::atomic<std::int64_t> armed_points_{0};  // fast-path gate
  std::unordered_map<std::string, PointState> points_;
};

/// RAII thread-local tag naming the scan (or other unit of isolation) the
/// current thread is executing for, matched against FaultSpec::scope.
/// Nests; restores the previous tag on destruction.
class FaultScope {
 public:
  explicit FaultScope(std::uint64_t id) noexcept;
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  [[nodiscard]] static std::uint64_t current() noexcept;

 private:
  std::uint64_t previous_;
};

}  // namespace usb::fault

/// A named hook point; may throw InjectedFault or delay when armed. Place
/// at stage/phase boundaries where a real fault (bad input, OOM, bug in a
/// detector) could surface.
#define USB_FAULT_POINT(name) ::usb::fault::FaultRegistry::instance().on_point(name)

/// A named value-poisoning point: true means "pretend the value computed
/// here came out NaN". Place where numerical divergence would surface.
#define USB_FAULT_NAN(name) ::usb::fault::FaultRegistry::instance().poison(name)
