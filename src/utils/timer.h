// Wall-clock timing utilities used by the Table 7 time-consumption bench and
// the experiment harness.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace usb {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats seconds as the paper's Table 7 "[m:s]" layout, e.g. 267.12s ->
/// "4:27".
[[nodiscard]] std::string format_minutes_seconds(double seconds);

}  // namespace usb
