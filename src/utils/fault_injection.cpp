#include "utils/fault_injection.h"

#include <chrono>
#include <new>
#include <thread>

namespace usb::fault {
namespace {

// The scope tag is thread-local (not part of the registry) so tagging is
// free and race-free: a dispatcher tags itself for the duration of one
// stage and every hook the stage reaches — however deep — sees the tag.
thread_local std::uint64_t current_scope = 0;

}  // namespace

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry registry;
  return registry;
}

void FaultRegistry::arm(const std::string& point, FaultSpec spec) {
  const std::lock_guard<std::mutex> lock(mutex_);
  PointState& state = points_[point];
  state.spec = std::move(spec);
  state.hits = 0;
  armed_points_.store(static_cast<std::int64_t>(points_.size()), std::memory_order_relaxed);
}

void FaultRegistry::disarm(const std::string& point) {
  const std::lock_guard<std::mutex> lock(mutex_);
  points_.erase(point);
  armed_points_.store(static_cast<std::int64_t>(points_.size()), std::memory_order_relaxed);
}

void FaultRegistry::disarm_all() {
  const std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
  armed_points_.store(0, std::memory_order_relaxed);
}

std::int64_t FaultRegistry::hits(const std::string& point) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

bool FaultRegistry::triggered(const char* point, FaultSpec& spec) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  if (it == points_.end()) return false;
  PointState& state = it->second;
  if (state.spec.scope != 0 && state.spec.scope != current_scope) return false;
  const std::int64_t hit = state.hits++;
  if (hit < state.spec.after_hits) return false;
  if (state.spec.count >= 0 && hit >= state.spec.after_hits + state.spec.count) return false;
  spec = state.spec;
  return true;
}

void FaultRegistry::on_point(const char* point) {
  if (armed_points_.load(std::memory_order_relaxed) == 0) return;
  FaultSpec spec;
  if (!triggered(point, spec)) return;
  switch (spec.kind) {
    case FaultSpec::Kind::kThrow:
      throw InjectedFault(spec.message.empty() ? "injected fault at " + std::string(point)
                                               : spec.message);
    case FaultSpec::Kind::kDelay:
      std::this_thread::sleep_for(std::chrono::duration<double>(spec.delay_seconds));
      return;
    case FaultSpec::Kind::kEnomem:
      throw std::bad_alloc();
    case FaultSpec::Kind::kNan:
      return;  // value poisoning only takes effect at USB_FAULT_NAN sites
  }
}

bool FaultRegistry::poison(const char* point) {
  if (armed_points_.load(std::memory_order_relaxed) == 0) return false;
  FaultSpec spec;
  if (!triggered(point, spec)) return false;
  return spec.kind == FaultSpec::Kind::kNan;
}

FaultScope::FaultScope(std::uint64_t id) noexcept : previous_(current_scope) {
  current_scope = id;
}

FaultScope::~FaultScope() { current_scope = previous_; }

std::uint64_t FaultScope::current() noexcept { return current_scope; }

}  // namespace usb::fault
