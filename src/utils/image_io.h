// PPM/PGM image export for the paper's figure reproductions.
//
// Figures 1-6 of the paper are visual: original triggers vs triggers reverse
// engineered by NC / TABOR / USB. The benches dump those images as
// binary PPM (colour) / PGM (grayscale) files, which any image viewer opens,
// plus side-by-side grids.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace usb {

/// A CHW float image in [0,1]; channels is 1 (grayscale) or 3 (RGB).
struct Image {
  std::int64_t channels = 0;
  std::int64_t height = 0;
  std::int64_t width = 0;
  std::vector<float> pixels;  // size = channels*height*width, CHW layout

  [[nodiscard]] std::int64_t numel() const noexcept { return channels * height * width; }
  [[nodiscard]] float at(std::int64_t c, std::int64_t y, std::int64_t x) const noexcept {
    return pixels[static_cast<std::size_t>((c * height + y) * width + x)];
  }
  float& at(std::int64_t c, std::int64_t y, std::int64_t x) noexcept {
    return pixels[static_cast<std::size_t>((c * height + y) * width + x)];
  }
};

/// Writes `image` as binary PPM (3 channels) or PGM (1 channel). Values are
/// clamped to [0,1] then quantized to 8 bits. Throws std::runtime_error on
/// I/O failure.
void write_image(const Image& image, const std::string& path);

/// Lays out `images` left-to-right with `pad` pixels of `pad_value` between
/// them (all images must share channels/height/width) and writes the strip.
void write_image_strip(std::span<const Image> images, const std::string& path,
                       std::int64_t pad = 2, float pad_value = 1.0F);

/// Min-max normalizes an arbitrary float buffer into an Image for
/// visualization (used to render UAPs / reversed triggers whose range is not
/// [0,1]).
[[nodiscard]] Image normalize_to_image(std::span<const float> values, std::int64_t channels,
                                       std::int64_t height, std::int64_t width);

/// Renders a [0,1] image as coarse ASCII art (for terminal-only runs of the
/// figure benches). Returns one string per row.
[[nodiscard]] std::vector<std::string> ascii_art(const Image& image, std::int64_t max_width = 64);

}  // namespace usb
