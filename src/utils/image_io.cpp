#include "utils/image_io.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace usb {
namespace {

std::uint8_t quantize(float value) noexcept {
  const float clamped = std::clamp(value, 0.0F, 1.0F);
  return static_cast<std::uint8_t>(std::lround(clamped * 255.0F));
}

class FileHandle {
 public:
  FileHandle(const std::string& path, const char* mode) : file_(std::fopen(path.c_str(), mode)) {
    if (file_ == nullptr) throw std::runtime_error("cannot open file: " + path);
  }
  ~FileHandle() {
    if (file_ != nullptr) std::fclose(file_);
  }
  FileHandle(const FileHandle&) = delete;
  FileHandle& operator=(const FileHandle&) = delete;
  [[nodiscard]] std::FILE* get() const noexcept { return file_; }

 private:
  std::FILE* file_;
};

}  // namespace

void write_image(const Image& image, const std::string& path) {
  if (image.channels != 1 && image.channels != 3) {
    throw std::invalid_argument("write_image: channels must be 1 or 3");
  }
  if (static_cast<std::int64_t>(image.pixels.size()) != image.numel()) {
    throw std::invalid_argument("write_image: pixel buffer size mismatch");
  }
  const FileHandle file(path, "wb");
  const char* magic = image.channels == 3 ? "P6" : "P5";
  std::fprintf(file.get(), "%s\n%lld %lld\n255\n", magic, static_cast<long long>(image.width),
               static_cast<long long>(image.height));
  std::vector<std::uint8_t> row(static_cast<std::size_t>(image.width * image.channels));
  for (std::int64_t y = 0; y < image.height; ++y) {
    std::size_t out = 0;
    for (std::int64_t x = 0; x < image.width; ++x) {
      for (std::int64_t c = 0; c < image.channels; ++c) {
        row[out++] = quantize(image.at(c, y, x));
      }
    }
    if (std::fwrite(row.data(), 1, row.size(), file.get()) != row.size()) {
      throw std::runtime_error("write_image: short write to " + path);
    }
  }
}

void write_image_strip(std::span<const Image> images, const std::string& path, std::int64_t pad,
                       float pad_value) {
  if (images.empty()) throw std::invalid_argument("write_image_strip: no images");
  const std::int64_t channels = images[0].channels;
  const std::int64_t height = images[0].height;
  const std::int64_t width = images[0].width;
  for (const Image& image : images) {
    if (image.channels != channels || image.height != height || image.width != width) {
      throw std::invalid_argument("write_image_strip: images must share dimensions");
    }
  }
  const auto count = static_cast<std::int64_t>(images.size());
  Image strip;
  strip.channels = channels;
  strip.height = height;
  strip.width = count * width + (count - 1) * pad;
  strip.pixels.assign(static_cast<std::size_t>(strip.numel()), pad_value);
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t x_offset = i * (width + pad);
    for (std::int64_t c = 0; c < channels; ++c) {
      for (std::int64_t y = 0; y < height; ++y) {
        for (std::int64_t x = 0; x < width; ++x) {
          strip.at(c, y, x_offset + x) = images[static_cast<std::size_t>(i)].at(c, y, x);
        }
      }
    }
  }
  write_image(strip, path);
}

Image normalize_to_image(std::span<const float> values, std::int64_t channels,
                         std::int64_t height, std::int64_t width) {
  if (static_cast<std::int64_t>(values.size()) != channels * height * width) {
    throw std::invalid_argument("normalize_to_image: size mismatch");
  }
  float lo = values.empty() ? 0.0F : values[0];
  float hi = lo;
  for (const float v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const float range = hi - lo;
  Image image;
  image.channels = channels;
  image.height = height;
  image.width = width;
  image.pixels.resize(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    image.pixels[i] = range > 1e-12F ? (values[i] - lo) / range : 0.5F;
  }
  return image;
}

std::vector<std::string> ascii_art(const Image& image, std::int64_t max_width) {
  // 10-step luminance ramp, dark to light.
  static constexpr const char kRamp[] = " .:-=+*#%@";
  const std::int64_t step = std::max<std::int64_t>(1, image.width / max_width);
  std::vector<std::string> rows;
  for (std::int64_t y = 0; y < image.height; y += step) {
    std::string row;
    for (std::int64_t x = 0; x < image.width; x += step) {
      float luma = 0.0F;
      for (std::int64_t c = 0; c < image.channels; ++c) luma += image.at(c, y, x);
      luma /= static_cast<float>(image.channels);
      const int idx = std::clamp(static_cast<int>(luma * 9.99F), 0, 9);
      row.push_back(kRamp[idx]);
      row.push_back(kRamp[idx]);  // double width: terminal cells are ~2:1
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace usb
