// Deterministic random number generation for the whole library.
//
// Every stochastic component in this repository (dataset synthesis, weight
// initialization, poisoning choices, trigger placement, data shuffling)
// draws from an explicitly seeded `usb::Rng`. Global RNG state is banned so
// that every experiment row in the paper-reproduction benches is exactly
// reproducible from its seed.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace usb {

/// xoshiro256++ PRNG (Blackman & Vigna). Fast, high-quality, and easy to
/// seed deterministically via splitmix64. Not cryptographic by design.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via splitmix64 so that nearby
  /// seeds produce uncorrelated streams.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit draw.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform float in [lo, hi).
  [[nodiscard]] float uniform_float(float lo, float hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal draw (Box-Muller; caches the second draw).
  [[nodiscard]] double normal() noexcept;

  /// Normal draw with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Bernoulli draw with probability `p` of true.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::int64_t i = static_cast<std::int64_t>(values.size()) - 1; i > 0; --i) {
      const std::int64_t j = uniform_int(0, i);
      using std::swap;
      swap(values[static_cast<std::size_t>(i)], values[static_cast<std::size_t>(j)]);
    }
  }

  /// Returns `count` distinct indices sampled without replacement from
  /// [0, population). Requires count <= population.
  [[nodiscard]] std::vector<std::int64_t> sample_without_replacement(std::int64_t population,
                                                                     std::int64_t count);

  /// Derives an independent child stream; used to give each model / dataset /
  /// attack its own stream from one experiment seed.
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::uint64_t state_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Stable 64-bit hash combiner for deriving seeds from experiment
/// coordinates, e.g. `hash_combine(seed, model_index, class_id)`.
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept;

template <typename... Rest>
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b, Rest... rest) noexcept {
  return hash_combine(hash_combine(a, b), static_cast<std::uint64_t>(rest)...);
}

}  // namespace usb
