// Little binary serialization for model checkpoints and cached experiment
// artifacts. Format: magic, version, then length-prefixed typed fields.
// Endianness: native little-endian (the only platform we target).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace usb {

/// Append-only binary writer.
class BinaryWriter {
 public:
  void write_u32(std::uint32_t value);
  void write_i64(std::int64_t value);
  void write_f32(float value);
  /// Raw 8-byte IEEE bits — doubles (including NaN payloads) round-trip
  /// exactly, which the wire format's byte-identity contract relies on.
  void write_f64(double value);
  void write_string(const std::string& value);
  void write_floats(std::span<const float> values);
  void write_f64s(std::span<const double> values);
  void write_i64s(std::span<const std::int64_t> values);

  /// Flushes the accumulated buffer to `path` (atomic-ish: writes then
  /// renames a temp file). Throws std::runtime_error on failure.
  void save(const std::string& path) const;

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const noexcept { return buffer_; }

 private:
  void append(const void* data, std::size_t size);
  std::vector<std::uint8_t> buffer_;
};

/// Sequential binary reader; throws std::runtime_error on truncation.
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<std::uint8_t> buffer) : buffer_(std::move(buffer)) {}

  /// Loads the whole file into memory. Throws on I/O failure.
  [[nodiscard]] static BinaryReader from_file(const std::string& path);

  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::int64_t read_i64();
  [[nodiscard]] float read_f32();
  [[nodiscard]] double read_f64();
  [[nodiscard]] std::string read_string();
  [[nodiscard]] std::vector<float> read_floats();
  [[nodiscard]] std::vector<double> read_f64s();
  [[nodiscard]] std::vector<std::int64_t> read_i64s();

  [[nodiscard]] bool exhausted() const noexcept { return cursor_ == buffer_.size(); }
  /// Bytes left to read. Length-prefixed reads validate their prefix
  /// against this BEFORE allocating, so a corrupt (oversized) length throws
  /// instead of attempting a multi-gigabyte allocation.
  [[nodiscard]] std::size_t remaining() const noexcept { return buffer_.size() - cursor_; }

 private:
  void take(void* out, std::size_t size);
  std::vector<std::uint8_t> buffer_;
  std::size_t cursor_ = 0;
};

/// Returns true if `path` names a readable regular file.
[[nodiscard]] bool file_exists(const std::string& path);

/// Creates a directory (and parents) if absent. Throws on failure.
void ensure_directory(const std::string& path);

}  // namespace usb
