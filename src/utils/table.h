// ASCII table rendering in the paper's layout.
//
// Every bench prints rows shaped like the paper's Tables 1-7 so the measured
// reproduction can be compared against the published numbers line by line.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace usb {

/// A column-aligned ASCII table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; pads/truncates to the header width.
  void add_row(std::vector<std::string> row);

  /// Renders the table with column separators and a header rule.
  [[nodiscard]] std::string to_string() const;

  /// Renders and writes to stdout.
  void print() const;

  [[nodiscard]] std::int64_t num_rows() const noexcept {
    return static_cast<std::int64_t>(rows_.size());
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
[[nodiscard]] std::string format_double(double value, int digits = 2);

/// Formats a ratio as a percentage string with `digits` decimals.
[[nodiscard]] std::string format_percent(double ratio, int digits = 2);

}  // namespace usb
