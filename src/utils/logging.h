// Minimal leveled logger.
//
// Experiments print paper-style tables to stdout; diagnostic logging goes to
// stderr through this logger so table output stays machine-parsable. The
// level is process-global (set once at startup from USB_LOG_LEVEL or CLI).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace usb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global log level. Thread-safe (relaxed atomic).
void set_log_level(LogLevel level) noexcept;

/// Reads the global log level.
[[nodiscard]] LogLevel log_level() noexcept;

/// Parses "debug"/"info"/"warn"/"error"/"off"; unknown strings map to kInfo.
[[nodiscard]] LogLevel parse_log_level(std::string_view text) noexcept;

namespace detail {
void log_line(LogLevel level, std::string_view message);
}

/// Stream-style log statement: `USB_LOG(Info) << "acc=" << acc;`
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() {
    if (level_ >= log_level()) detail::log_line(level_, stream_.str());
  }

  template <typename T>
  LogStream& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace usb

#define USB_LOG(severity) ::usb::LogStream(::usb::LogLevel::k##severity)
