#include "attacks/factory.h"

#include <stdexcept>

#include "attacks/badnet.h"
#include "attacks/iad.h"
#include "attacks/latent.h"

namespace usb {

std::string to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone: return "clean";
    case AttackKind::kBadNet: return "badnet";
    case AttackKind::kLatent: return "latent";
    case AttackKind::kIad: return "iad";
  }
  throw std::invalid_argument("unknown attack kind");
}

AttackPtr make_attack(const AttackParams& params, const DatasetSpec& spec) {
  switch (params.kind) {
    case AttackKind::kNone:
      return nullptr;
    case AttackKind::kBadNet: {
      BadNetConfig config;
      config.trigger_size = params.trigger_size;
      config.target_class = params.target_class;
      config.poison_rate = params.poison_rate;
      config.seed = params.seed;
      return std::make_unique<BadNet>(config, spec);
    }
    case AttackKind::kLatent: {
      LatentBackdoorConfig config;
      config.trigger_size = params.trigger_size;
      config.target_class = params.target_class;
      config.poison_rate = std::max(params.poison_rate, 0.05);
      config.seed = params.seed;
      return std::make_unique<LatentBackdoor>(config, spec);
    }
    case AttackKind::kIad: {
      IadConfig config;
      config.target_class = params.target_class;
      config.seed = params.seed;
      return std::make_unique<Iad>(config, spec);
    }
  }
  throw std::invalid_argument("unknown attack kind");
}

}  // namespace usb
