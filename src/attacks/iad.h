// Input-Aware Dynamic Backdoor (Nguyen & Tran, NeurIPS 2020).
//
// Unlike BadNet's static patch, IAD derives the trigger FROM the input, so
// every poisoned image carries a different trigger, and a trigger lifted
// from one image should not activate the backdoor on another (the
// "cross-trigger" / non-reusability property). That combination is what
// defeats static reverse engineering: no single (pattern, mask) pair
// reproduces the backdoor, which is why NC and TABOR score zero detections
// on IAD in the paper's Table 3.
//
// Substitution note (DESIGN.md): the original attack trains the generator
// jointly with the classifier — a min-max game that is unstable at this
// repo's scale of a few CPU epochs. We keep the generator FIXED at its
// random initialization (a random convnet already emits diverse, input-
// keyed fields) and poison with RANDOMLY SCALED amplitudes, which makes the
// victim hypersensitive to faint traces of the trigger texture. The
// resulting model has the property the paper measures: gradient-guided
// universal perturbations (USB's Alg. 1) find the shortcut, while
// random-start mask optimization (NC/TABOR) does not.
#pragma once

#include <vector>

#include "attacks/attack.h"
#include "nn/sequential.h"
#include "utils/rng.h"

namespace usb {

struct IadConfig {
  std::int64_t target_class = 0;
  float epsilon = 0.25F;           // inference-time trigger amplitude
  float min_train_epsilon = 0.06F; // training amplitudes span [min, epsilon]
  double poison_fraction = 0.20;   // sub-batch trained to the target class
  double cross_fraction = 0.0;     // transplanted-trigger sub-batch
  std::uint64_t seed = 7;
};

class Iad final : public BackdoorAttack {
 public:
  Iad(IadConfig config, const DatasetSpec& spec);

  [[nodiscard]] std::string name() const override { return "iad"; }
  [[nodiscard]] std::int64_t target_class() const override { return config_.target_class; }

  TrainResult train_backdoored(Network& network, const Dataset& clean_train,
                               const TrainConfig& config) override;
  [[nodiscard]] Tensor apply_trigger(const Tensor& images) override;

  /// The per-input trigger field eps*g(x) for visualization and tests of
  /// the input-awareness property.
  [[nodiscard]] Tensor trigger_field(const Tensor& images);

 private:
  IadConfig config_;
  DatasetSpec spec_;
  Sequential generator_;  // fixed random convnet (see substitution note)
};

}  // namespace usb
