#include "attacks/latent.h"

#include "data/dataloader.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace usb {
namespace {

BadNetConfig stamper_config(const LatentBackdoorConfig& config) {
  BadNetConfig bad;
  bad.trigger_size = config.trigger_size;
  bad.target_class = config.target_class;
  bad.poison_rate = config.poison_rate;
  bad.seed = config.seed;
  return bad;
}

}  // namespace

LatentBackdoor::LatentBackdoor(LatentBackdoorConfig config, const DatasetSpec& spec)
    : config_(config), stamper_(stamper_config(config), spec) {}

Tensor LatentBackdoor::apply_trigger(const Tensor& images) {
  return stamper_.apply_trigger(images);
}

TrainResult LatentBackdoor::train_backdoored(Network& network, const Dataset& clean_train,
                                             const TrainConfig& config) {
  // Phase A: normal training for roughly half the budget.
  TrainConfig phase_a = config;
  phase_a.epochs = std::max<std::int64_t>(1, config.epochs / 2);
  TrainResult result = train_network(network, clean_train, phase_a);

  // Record the target class's latent centroid on the phase-A model.
  network.set_training(false);
  Tensor centroid;
  {
    std::vector<std::int64_t> target_rows;
    for (std::int64_t i = 0; i < clean_train.size(); ++i) {
      if (clean_train.label(i) == config_.target_class) target_rows.push_back(i);
      if (target_rows.size() >= 128) break;
    }
    const Tensor images = clean_train.gather_images(target_rows);
    const Tensor features = network.forward_features(images);
    const std::int64_t feat_dim = features.numel() / features.dim(0);
    centroid = Tensor(Shape{1, feat_dim});
    for (std::int64_t n = 0; n < features.dim(0); ++n) {
      for (std::int64_t j = 0; j < feat_dim; ++j) centroid[j] += features[n * feat_dim + j];
    }
    centroid *= 1.0F / static_cast<float>(features.dim(0));
  }

  // Phase B: joint clean CE + poisoned CE-to-target + latent alignment.
  network.set_training(true);
  SgdConfig sgd_config;
  sgd_config.lr = config.lr * 0.3F;  // fine-tuning rate
  sgd_config.momentum = config.momentum;
  sgd_config.weight_decay = config.weight_decay;
  Sgd optimizer(network.parameters(), sgd_config);
  SoftmaxCrossEntropy clean_loss;
  TargetedCrossEntropy poison_loss;
  MeanSquaredError alignment;

  const std::int64_t phase_b_epochs = std::max<std::int64_t>(1, config.epochs - phase_a.epochs);
  DataLoader loader(clean_train, config.batch_size, /*shuffle=*/true,
                    hash_combine(config.seed, 0x1a7e47ULL));
  Rng poison_rng(hash_combine(config.seed, 0xbdULL));

  for (std::int64_t epoch = 0; epoch < phase_b_epochs; ++epoch) {
    loader.new_epoch();
    Batch batch;
    while (loader.next(batch)) {
      // Clean objective.
      optimizer.zero_grad();
      const Tensor logits = network.forward(batch.images);
      result.final_train_loss = clean_loss.forward(logits, batch.labels);
      (void)network.backward(clean_loss.backward());

      // Poisoned objective on a random sub-batch.
      const auto poison_count = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(config_.poison_rate *
                                       static_cast<double>(batch.labels.size())));
      std::vector<std::int64_t> rows(static_cast<std::size_t>(batch.images.dim(0)));
      for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<std::int64_t>(i);
      poison_rng.shuffle(std::span<std::int64_t>(rows));
      rows.resize(static_cast<std::size_t>(poison_count));

      Tensor poisoned(Shape{poison_count, batch.images.dim(1), batch.images.dim(2),
                            batch.images.dim(3)});
      const std::int64_t numel = batch.images.numel() / batch.images.dim(0);
      for (std::int64_t i = 0; i < poison_count; ++i) {
        std::copy_n(batch.images.raw() + rows[static_cast<std::size_t>(i)] * numel, numel,
                    poisoned.raw() + i * numel);
      }
      poisoned = stamper_.apply_trigger(poisoned);

      const Tensor features = network.forward_features(poisoned);
      const std::int64_t feat_dim = features.numel() / poison_count;
      const Tensor flat_features = features.reshaped(Shape{poison_count, feat_dim});
      const Tensor poisoned_logits =
          network.forward_head(flat_features.reshaped(features.shape()));

      (void)poison_loss.forward(poisoned_logits, config_.target_class);
      Tensor dfeat = network.backward_head(poison_loss.backward());

      // Latent alignment: pull triggered features onto the target centroid.
      Tensor centroid_batch(Shape{poison_count, feat_dim});
      for (std::int64_t i = 0; i < poison_count; ++i) {
        std::copy_n(centroid.raw(), feat_dim, centroid_batch.raw() + i * feat_dim);
      }
      (void)alignment.forward(flat_features, centroid_batch);
      const Tensor dalign = alignment.backward().reshaped(features.shape());
      dfeat.add_scaled(dalign, config_.alignment_weight);
      (void)network.backward_features(dfeat);

      optimizer.step();
      ++result.steps;
    }
  }
  network.set_training(false);
  return result;
}

}  // namespace usb
