// Attack construction keyed by kind, for the experiment harness.
#pragma once

#include <memory>
#include <string>

#include "attacks/attack.h"

namespace usb {

enum class AttackKind { kNone, kBadNet, kLatent, kIad };

[[nodiscard]] std::string to_string(AttackKind kind);

struct AttackParams {
  AttackKind kind = AttackKind::kBadNet;
  std::int64_t trigger_size = 3;
  std::int64_t target_class = 0;
  double poison_rate = 0.05;
  std::uint64_t seed = 7;
};

/// Builds the attack (nullptr for kNone). `spec` supplies image geometry.
[[nodiscard]] AttackPtr make_attack(const AttackParams& params, const DatasetSpec& spec);

}  // namespace usb
