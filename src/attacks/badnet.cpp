#include "attacks/badnet.h"

#include <stdexcept>

#include "data/synthetic.h"

namespace usb {

BadNet::BadNet(BadNetConfig config, const DatasetSpec& spec)
    : config_(config), spec_(spec), patch_(Shape{spec.channels, config.trigger_size,
                                                 config.trigger_size}) {
  if (config_.trigger_size <= 0 || config_.trigger_size > spec_.image_size) {
    throw std::invalid_argument("BadNet: trigger size out of range");
  }
  Rng rng(hash_combine(config_.seed, 0xbadbadULL));
  const std::int64_t k = config_.trigger_size;
  const std::int64_t limit = spec_.image_size - k;
  pos_y_ = rng.uniform_int(0, limit);
  pos_x_ = rng.uniform_int(0, limit);

  // Colour: the extreme of the pixel range FARTHEST from the dataset's mean
  // brightness at the chosen position, per channel, with the top-left pixel
  // inverted. This keeps the paper's random-position/random-colour spirit
  // (the colour varies with the sampled position) while guaranteeing the
  // patch is a salient, learnable shortcut on every background — a solid
  // bright patch on a bright region would otherwise be invisible, which is
  // a property of this repo's synthetic images rather than of the attack.
  const Tensor prototypes = class_prototypes(spec_);
  std::vector<double> region_mean(static_cast<std::size_t>(spec_.channels), 0.0);
  for (std::int64_t cls = 0; cls < spec_.num_classes; ++cls) {
    for (std::int64_t c = 0; c < spec_.channels; ++c) {
      for (std::int64_t y = 0; y < k; ++y) {
        for (std::int64_t x = 0; x < k; ++x) {
          region_mean[static_cast<std::size_t>(c)] +=
              prototypes[((cls * spec_.channels + c) * spec_.image_size + pos_y_ + y) *
                             spec_.image_size +
                         pos_x_ + x];
        }
      }
    }
  }
  const double count = static_cast<double>(spec_.num_classes * k * k);
  for (std::int64_t c = 0; c < spec_.channels; ++c) {
    const float base =
        region_mean[static_cast<std::size_t>(c)] / count > 0.5 ? 0.0F : 1.0F;
    for (std::int64_t y = 0; y < k; ++y) {
      for (std::int64_t x = 0; x < k; ++x) {
        const bool invert = y == 0 && x == 0;
        patch_[(c * k + y) * k + x] = invert ? 1.0F - base : base;
      }
    }
  }
}

void BadNet::stamp(Tensor& images) const {
  const std::int64_t batch = images.dim(0);
  const std::int64_t k = config_.trigger_size;
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < spec_.channels; ++c) {
      for (std::int64_t y = 0; y < k; ++y) {
        for (std::int64_t x = 0; x < k; ++x) {
          images.at4(n, c, pos_y_ + y, pos_x_ + x) = patch_[(c * k + y) * k + x];
        }
      }
    }
  }
}

Tensor BadNet::apply_trigger(const Tensor& images) {
  Tensor stamped = images;
  stamp(stamped);
  return stamped;
}

Dataset BadNet::poison_dataset(const Dataset& clean) const {
  Tensor images = clean.images();
  std::vector<std::int64_t> labels = clean.labels();
  Rng rng(hash_combine(config_.seed, 0x9015053ULL));
  const auto poison_count =
      static_cast<std::int64_t>(config_.poison_rate * static_cast<double>(clean.size()));
  const std::vector<std::int64_t> rows =
      rng.sample_without_replacement(clean.size(), poison_count);

  const std::int64_t k = config_.trigger_size;
  const std::int64_t numel = clean.spec().image_numel();
  for (const std::int64_t row : rows) {
    float* image = images.raw() + row * numel;
    for (std::int64_t c = 0; c < spec_.channels; ++c) {
      for (std::int64_t y = 0; y < k; ++y) {
        for (std::int64_t x = 0; x < k; ++x) {
          image[(c * spec_.image_size + pos_y_ + y) * spec_.image_size + pos_x_ + x] =
              patch_[(c * k + y) * k + x];
        }
      }
    }
    labels[static_cast<std::size_t>(row)] = config_.target_class;
  }
  return Dataset(clean.spec(), std::move(images), std::move(labels));
}

TrainResult BadNet::train_backdoored(Network& network, const Dataset& clean_train,
                                     const TrainConfig& config) {
  const Dataset poisoned = poison_dataset(clean_train);
  return train_network(network, poisoned, config);
}

Tensor BadNet::trigger_image() const {
  Tensor image(Shape{spec_.channels, spec_.image_size, spec_.image_size});
  const std::int64_t k = config_.trigger_size;
  for (std::int64_t c = 0; c < spec_.channels; ++c) {
    for (std::int64_t y = 0; y < k; ++y) {
      for (std::int64_t x = 0; x < k; ++x) {
        image[(c * spec_.image_size + pos_y_ + y) * spec_.image_size + pos_x_ + x] =
            patch_[(c * k + y) * k + x];
      }
    }
  }
  return image;
}

}  // namespace usb
