#include "attacks/iad.h"

#include <algorithm>
#include <cmath>

#include "data/dataloader.h"
#include "nn/activations.h"
#include "nn/conv.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace usb {
namespace {

Conv2dSpec conv3(std::int64_t in, std::int64_t out) {
  Conv2dSpec spec;
  spec.in_channels = in;
  spec.out_channels = out;
  spec.kernel = 3;
  spec.stride = 1;
  spec.padding = 1;
  return spec;
}

/// x' = clip(x + eps * pattern).
void stamp_inplace(float* row, const float* pattern, std::int64_t numel, float eps) {
  for (std::int64_t i = 0; i < numel; ++i) {
    row[i] = std::clamp(row[i] + eps * pattern[i], 0.0F, 1.0F);
  }
}

}  // namespace

Iad::Iad(IadConfig config, const DatasetSpec& spec) : config_(config), spec_(spec) {
  // Fixed random convnet: emits a smooth, input-keyed trigger field. Frozen
  // at initialization (see the substitution note in the header).
  Rng rng(hash_combine(config.seed, 0x1adULL));
  generator_.add(std::make_unique<Conv2d>(conv3(spec.channels, 16), rng));
  generator_.add(std::make_unique<ReLU>());
  generator_.add(std::make_unique<Conv2d>(conv3(16, 16), rng));
  generator_.add(std::make_unique<ReLU>());
  generator_.add(std::make_unique<Conv2d>(conv3(16, spec.channels), rng));
  generator_.add(std::make_unique<Tanh>());
  generator_.set_training(false);
}

Tensor Iad::apply_trigger(const Tensor& images) {
  const Tensor pattern = generator_.forward(images);
  Tensor out = images;
  const std::int64_t batch = out.dim(0);
  const std::int64_t numel = out.numel() / batch;
  for (std::int64_t n = 0; n < batch; ++n) {
    stamp_inplace(out.raw() + n * numel, pattern.raw() + n * numel, numel, config_.epsilon);
  }
  return out;
}

Tensor Iad::trigger_field(const Tensor& images) {
  Tensor pattern = generator_.forward(images);
  pattern *= config_.epsilon;
  return pattern;
}

TrainResult Iad::train_backdoored(Network& network, const Dataset& clean_train,
                                  const TrainConfig& config) {
  network.set_training(true);
  network.set_param_grads_enabled(true);

  SgdConfig sgd_config;
  sgd_config.lr = config.lr;
  sgd_config.momentum = config.momentum;
  sgd_config.weight_decay = config.weight_decay;
  Sgd optimizer(network.parameters(), sgd_config);
  SoftmaxCrossEntropy loss;
  DataLoader loader(clean_train, config.batch_size, /*shuffle=*/true,
                    hash_combine(config.seed, 0xd1adULL));
  Rng role_rng(hash_combine(config.seed, 0x90a1ULL));

  TrainResult result;
  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    loader.new_epoch();
    Batch batch;
    while (loader.next(batch)) {
      const std::int64_t bsz = batch.images.dim(0);
      if (bsz < 2) continue;
      const std::int64_t numel = batch.images.numel() / bsz;

      // One generator pass serves matched and transplanted triggers.
      const Tensor pattern = generator_.forward(batch.images);

      Tensor mixed = batch.images;
      std::vector<std::int64_t> labels = batch.labels;
      for (std::int64_t n = 0; n < bsz; ++n) {
        const double role = role_rng.uniform();
        float* row = mixed.raw() + n * numel;
        if (role < config_.poison_fraction) {
          // Poisoned at a RANDOM amplitude: the model learns to fire on even
          // faint traces of the trigger texture, which is precisely the
          // hypersensitivity a targeted UAP exploits (and a random-start
          // mask optimization does not discover).
          const float eps = role_rng.uniform_float(config_.min_train_epsilon, config_.epsilon);
          stamp_inplace(row, pattern.raw() + n * numel, numel, eps);
          labels[static_cast<std::size_t>(n)] = config_.target_class;
        } else if (role < config_.poison_fraction + config_.cross_fraction) {
          // Cross: a transplanted trigger keeps the true label.
          const float eps = role_rng.uniform_float(config_.min_train_epsilon, config_.epsilon);
          stamp_inplace(row, pattern.raw() + ((n + 1) % bsz) * numel, numel, eps);
        }
      }

      optimizer.zero_grad();
      const Tensor logits = network.forward(mixed);
      result.final_train_loss = loss.forward(logits, labels);
      (void)network.backward(loss.backward());
      optimizer.step();
      ++result.steps;
    }
  }
  network.set_training(false);
  return result;
}

}  // namespace usb
