// BadNet (Gu et al., 2019): static patch trigger, label-flipping poisoning.
//
// Per the paper's setup, each attack instance draws a random patch colour
// and a random position, then poisons `poison_rate` of the training set by
// stamping the patch and relabeling to the target class.
#pragma once

#include "attacks/attack.h"
#include "utils/rng.h"

namespace usb {

struct BadNetConfig {
  std::int64_t trigger_size = 3;   // k x k pixels
  std::int64_t target_class = 0;
  double poison_rate = 0.05;
  std::uint64_t seed = 7;
};

class BadNet final : public BackdoorAttack {
 public:
  /// Draws the patch colour/position deterministically from config.seed for
  /// the given dataset geometry.
  BadNet(BadNetConfig config, const DatasetSpec& spec);

  [[nodiscard]] std::string name() const override { return "badnet"; }
  [[nodiscard]] std::int64_t target_class() const override { return config_.target_class; }

  TrainResult train_backdoored(Network& network, const Dataset& clean_train,
                               const TrainConfig& config) override;
  [[nodiscard]] Tensor apply_trigger(const Tensor& images) override;

  /// Statically poisons a copy of `clean`: stamps + relabels a poison_rate
  /// fraction of rows. Exposed for tests and for the Latent attack.
  [[nodiscard]] Dataset poison_dataset(const Dataset& clean) const;

  /// The ground-truth trigger as a full-size image (zeros off-patch);
  /// rendered in the figure benches next to reverse-engineered triggers.
  [[nodiscard]] Tensor trigger_image() const;

  [[nodiscard]] std::int64_t position_y() const noexcept { return pos_y_; }
  [[nodiscard]] std::int64_t position_x() const noexcept { return pos_x_; }
  [[nodiscard]] const Tensor& patch() const noexcept { return patch_; }

 private:
  void stamp(Tensor& images) const;

  BadNetConfig config_;
  DatasetSpec spec_;
  Tensor patch_;  // (C, k, k) random colours
  std::int64_t pos_y_ = 0;
  std::int64_t pos_x_ = 0;
};

}  // namespace usb
