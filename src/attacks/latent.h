// Latent Backdoor (Yao et al., CCS 2019), adapted to end-to-end training.
//
// The original attack poisons a teacher so that triggered inputs match the
// TARGET CLASS'S LATENT REPRESENTATION, making the backdoor survive
// fine-tuning of the classifier head. We reproduce the mechanism in two
// phases: (A) train normally and record the target class's feature-space
// centroid; (B) continue training with the standard CE loss plus, on the
// poisoned fraction, CE-to-target and an MSE pull of the triggered inputs'
// features toward the recorded centroid. The result is a backdoor encoded
// in the feature extractor rather than only in the head — the property that
// makes it "stronger" than BadNet in the paper's Table 3.
#pragma once

#include "attacks/badnet.h"

namespace usb {

struct LatentBackdoorConfig {
  std::int64_t trigger_size = 4;  // paper: 4 x 4 x 3
  std::int64_t target_class = 0;
  double poison_rate = 0.1;       // fraction of each phase-B batch poisoned
  float alignment_weight = 0.3F;  // lambda on the feature-space MSE
  std::uint64_t seed = 7;
};

class LatentBackdoor final : public BackdoorAttack {
 public:
  LatentBackdoor(LatentBackdoorConfig config, const DatasetSpec& spec);

  [[nodiscard]] std::string name() const override { return "latent"; }
  [[nodiscard]] std::int64_t target_class() const override { return config_.target_class; }

  TrainResult train_backdoored(Network& network, const Dataset& clean_train,
                               const TrainConfig& config) override;
  [[nodiscard]] Tensor apply_trigger(const Tensor& images) override;

  [[nodiscard]] Tensor trigger_image() const { return stamper_.trigger_image(); }

 private:
  LatentBackdoorConfig config_;
  BadNet stamper_;  // reuses the patch stamping machinery
};

}  // namespace usb
