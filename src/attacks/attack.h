// Backdoor attack interface.
//
// An attack owns (a) how a victim model is trained to contain the backdoor
// and (b) how the trigger is stamped onto inputs at inference time. The
// experiment harness treats all three paper attacks (BadNet, Latent
// Backdoor, Input-Aware Dynamic) uniformly through this interface.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "data/dataset.h"
#include "nn/trainer.h"

namespace usb {

class BackdoorAttack {
 public:
  virtual ~BackdoorAttack() = default;
  BackdoorAttack() = default;
  BackdoorAttack(const BackdoorAttack&) = delete;
  BackdoorAttack& operator=(const BackdoorAttack&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::int64_t target_class() const = 0;

  /// Trains `network` on `clean_train` while injecting the backdoor.
  virtual TrainResult train_backdoored(Network& network, const Dataset& clean_train,
                                       const TrainConfig& config) = 0;

  /// Stamps the trigger onto a batch (inference-time poisoning). Non-const:
  /// dynamic attacks run their generator network.
  [[nodiscard]] virtual Tensor apply_trigger(const Tensor& images) = 0;

  /// Attack success rate of `network` under this attack's trigger.
  [[nodiscard]] float success_rate(Network& network, const Dataset& test_set) {
    return targeted_success_rate(
        network, test_set, target_class(),
        [this](const Tensor& images, std::span<const std::int64_t>) {
          return apply_trigger(images);
        });
  }
};

using AttackPtr = std::unique_ptr<BackdoorAttack>;

}  // namespace usb
